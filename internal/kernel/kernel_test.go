package kernel

import (
	"math"
	"math/rand"
	"testing"

	"stencilsched/internal/box"
	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
)

func TestVelComp(t *testing.T) {
	for d, want := range []int{1, 2, 3} {
		if got := VelComp(d); got != want {
			t.Errorf("VelComp(%d) = %d, want %d", d, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("VelComp(3) did not panic")
			}
		}()
		VelComp(3)
	}()
}

func TestFaceAvgIsExactForCubics(t *testing.T) {
	// Eq. 6 is a fourth-order face average: for cell averages of a cubic
	// polynomial it reproduces the exact face average (which for a point
	// value interpretation is the polynomial at the face). Verify with cell
	// averages of f(x) = x^3: cell i average over [i, i+1] is
	// ((i+1)^4 - i^4)/4; the exact face value of the average-projection at
	// face between cells is continuous, so the stencil must reproduce the
	// common limit.
	cellAvg := func(i int) float64 {
		a, b := float64(i), float64(i+1)
		return (b*b*b*b - a*a*a*a) / 4
	}
	phi := make([]float64, 9)
	for i := range phi {
		phi[i] = cellAvg(i - 2)
	}
	// Face at cell boundary x = 2 (between cells 1 and 2): offset of the
	// high cell (index 2) in phi is 4.
	got := FaceAvg(phi, 4, 1)
	want := math.Pow(2, 3) // x^3 at x=2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FaceAvg on cubic = %v, want %v", got, want)
	}
}

func TestFaceAvgConstantPreserved(t *testing.T) {
	phi := []float64{3, 3, 3, 3}
	if got := FaceAvg(phi, 2, 1); math.Abs(got-3) > 1e-15 {
		t.Fatalf("FaceAvg(const 3) = %v", got)
	}
}

func TestFaceAvgCoefficientsSumToOne(t *testing.T) {
	if math.Abs(2*C1+2*C2-1) > 1e-15 {
		t.Fatalf("2*C1 + 2*C2 = %v, want 1", 2*C1+2*C2)
	}
}

func TestGrownBoxAndNewState(t *testing.T) {
	v := box.Cube(8)
	g := GrownBox(v)
	if g.Size() != ivect.Uniform(12) {
		t.Fatalf("GrownBox size = %v", g.Size())
	}
	phi0, phi1 := NewState(v)
	if !phi0.Box().Equal(g) || !phi1.Box().Equal(v) {
		t.Fatal("NewState boxes wrong")
	}
	if phi0.NComp() != NComp || phi1.NComp() != NComp {
		t.Fatal("NewState ncomp wrong")
	}
}

func TestReferenceConstantStateZeroDivergence(t *testing.T) {
	// For spatially constant phi0 the face averages are constant, so every
	// flux difference vanishes: phi1 must remain exactly zero.
	v := box.Cube(6)
	phi0, phi1 := NewState(v)
	for c := 0; c < NComp; c++ {
		phi0.FillComp(c, float64(c+1))
	}
	Reference(phi0, phi1, v)
	if n := phi1.MaxNorm(v); n != 0 {
		t.Fatalf("constant state produced |phi1| = %v", n)
	}
}

func TestReferenceConservation(t *testing.T) {
	// The accumulation telescopes: the sum of phi1 over the valid box equals
	// the net flux through the box surface, computed independently here.
	v := box.Cube(8)
	phi0, phi1 := NewState(v)
	rnd := rand.New(rand.NewSource(21))
	phi0.Randomize(rnd, 0.5, 1.5)
	Reference(phi0, phi1, v)

	for c := 0; c < NComp; c++ {
		got := phi1.SumComp(v, c)
		var want float64
		for dir := 0; dir < ivect.SpaceDim; dir++ {
			faces := v.SurroundingFaces(dir)
			// High boundary faces add, low boundary faces subtract.
			loFaces := faces
			loFaces.Hi = loFaces.Hi.With(dir, faces.Lo[dir])
			hiFaces := faces
			hiFaces.Lo = hiFaces.Lo.With(dir, faces.Hi[dir])
			sum := func(fb box.Box, sign float64) {
				fb.ForEach(func(p ivect.IntVect) {
					vel := faceAvgAt(phi0, p, dir, VelComp(dir))
					want += sign * Flux2(vel, faceAvgAt(phi0, p, dir, c))
				})
			}
			sum(hiFaces, 1)
			sum(loFaces, -1)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("comp %d: sum phi1 = %v, boundary flux = %v", c, got, want)
		}
	}
}

func TestReferenceAccumulates(t *testing.T) {
	// Running the kernel twice must accumulate exactly twice the increment.
	v := box.Cube(4)
	phi0, phi1 := NewState(v)
	InitSmooth(phi0, 8)
	Reference(phi0, phi1, v)
	once := phi1.Clone()
	Reference(phi0, phi1, v)
	var maxRel float64
	v.ForEach(func(p ivect.IntVect) {
		for c := 0; c < NComp; c++ {
			d := math.Abs(phi1.Get(p, c) - 2*once.Get(p, c))
			if d > maxRel {
				maxRel = d
			}
		}
	})
	if maxRel > 1e-12 {
		t.Fatalf("second application not additive, max err %v", maxRel)
	}
}

func TestReferenceMatchesDirectEvaluation(t *testing.T) {
	// Independent re-derivation: compute phi1 at a handful of cells straight
	// from the formulas, bypassing the staged flux arrays.
	v := box.Cube(5)
	phi0, phi1 := NewState(v)
	rnd := rand.New(rand.NewSource(33))
	phi0.Randomize(rnd, -1, 1)
	Reference(phi0, phi1, v)

	cells := []ivect.IntVect{
		ivect.New(0, 0, 0), ivect.New(4, 4, 4), ivect.New(2, 1, 3),
	}
	for _, cell := range cells {
		for c := 0; c < NComp; c++ {
			var want float64
			for dir := 0; dir < ivect.SpaceDim; dir++ {
				lo, hi := cell, cell.Shift(dir, 1)
				fluxAt := func(face ivect.IntVect) float64 {
					return Flux2(faceAvgAt(phi0, face, dir, VelComp(dir)),
						faceAvgAt(phi0, face, dir, c))
				}
				want += fluxAt(hi) - fluxAt(lo)
			}
			got := phi1.Get(cell, c)
			if math.Abs(got-want) > 1e-13 {
				t.Fatalf("cell %v comp %d: got %v, want %v", cell, c, got, want)
			}
		}
	}
}

func TestReferencePanicsOnBadState(t *testing.T) {
	v := box.Cube(4)
	phi0, phi1 := NewState(v)
	small := fab.New(v, NComp) // missing ghosts
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing ghosts not detected")
			}
		}()
		Reference(small, phi1, v)
	}()
	bad := fab.New(GrownBox(v), 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong ncomp not detected")
			}
		}()
		Reference(bad, phi1, v)
	}()
	_ = phi0
}

func TestInitSmoothBounded(t *testing.T) {
	v := box.Cube(8)
	phi0, _ := NewState(v)
	InitSmooth(phi0, 16)
	phi0.Box().ForEach(func(p ivect.IntVect) {
		if rho := phi0.Get(p, 0); rho < 0.8 || rho > 1.2 {
			t.Fatalf("rho out of range at %v: %v", p, rho)
		}
		if e := phi0.Get(p, 4); e < 1.8 || e > 2.2 {
			t.Fatalf("e out of range at %v: %v", p, e)
		}
	})
	// Periodicity: shifting by the period is an identity of the init field.
	a, _ := NewState(v)
	InitSmooth(a, 8)
	if a.Get(ivect.New(0, 0, 0), 0) != a.Get(ivect.New(8-8, 0, 0), 0) {
		t.Fatal("unexpected")
	}
	p1 := a.Get(ivect.New(1, 9, 3), 1) // ghost region
	p2 := a.Get(ivect.New(1, 1, 3), 1) // one period away, interior
	if math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("InitSmooth not periodic: %v vs %v", p1, p2)
	}
}

func TestWorkFor(t *testing.T) {
	n := 16
	w := WorkFor(box.Cube(n))
	n3 := int64(n * n * n)
	faces := 3 * int64(n+1) * int64(n) * int64(n)
	if w.Cells != n3 {
		t.Errorf("Cells = %d", w.Cells)
	}
	if w.Faces != faces {
		t.Errorf("Faces = %d, want %d", w.Faces, faces)
	}
	wantFlops := faces*NComp*FlopsPerFaceAvg + faces*NComp*FlopsPerFlux2 + n3*NComp*FlopsPerAccum*3
	if w.Flops != wantFlops {
		t.Errorf("Flops = %d, want %d", w.Flops, wantFlops)
	}
	if w.Flops != w.FlopsEval1+w.FlopsEval2+w.FlopsAccum {
		t.Error("Flops does not sum its parts")
	}
}
