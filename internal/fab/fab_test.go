package fab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stencilsched/internal/box"
	"stencilsched/internal/ivect"
)

func TestNewZeroFilled(t *testing.T) {
	f := New(box.Cube(4), 2)
	if f.NComp() != 2 {
		t.Fatalf("NComp = %d", f.NComp())
	}
	if len(f.Data()) != 4*4*4*2 {
		t.Fatalf("data len = %d", len(f.Data()))
	}
	for i, v := range f.Data() {
		if v != 0 {
			t.Fatalf("data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(empty) did not panic")
			}
		}()
		New(box.Empty(), 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(ncomp=0) did not panic")
			}
		}()
		New(box.Cube(2), 0)
	}()
}

func TestLayoutXUnitStrideComponentSlowest(t *testing.T) {
	// The paper's [x,y,z,c] column-major layout.
	b := box.NewSized(ivect.New(1, 2, 3), ivect.New(3, 4, 5))
	f := New(b, 2)
	sy, sz, sc := f.Strides()
	if sy != 3 || sz != 12 || sc != 60 {
		t.Fatalf("strides = %d,%d,%d", sy, sz, sc)
	}
	if f.Index(b.Lo, 0) != 0 {
		t.Fatalf("Index(lo,0) = %d", f.Index(b.Lo, 0))
	}
	if f.Index(b.Lo.Shift(0, 1), 0) != 1 {
		t.Fatal("x not unit stride")
	}
	if f.Index(b.Lo, 1) != 60 {
		t.Fatal("component not slowest")
	}
	// Index round-trip: offsets enumerate 0..n-1 in (c,z,y,x) nesting.
	want := 0
	for c := 0; c < 2; c++ {
		for z := b.Lo[2]; z <= b.Hi[2]; z++ {
			for y := b.Lo[1]; y <= b.Hi[1]; y++ {
				for x := b.Lo[0]; x <= b.Hi[0]; x++ {
					if got := f.Index(ivect.New(x, y, z), c); got != want {
						t.Fatalf("Index(%d,%d,%d,%d) = %d, want %d", x, y, z, c, got, want)
					}
					want++
				}
			}
		}
	}
}

func TestIndexPropertyRoundTrip(t *testing.T) {
	b := box.NewSized(ivect.New(-3, 5, 0), ivect.New(5, 4, 6))
	f := New(b, 3)
	cfg := &quick.Config{MaxCount: 500}
	prop := func(xi, yi, zi, ci uint16) bool {
		p := ivect.New(
			b.Lo[0]+int(xi)%5,
			b.Lo[1]+int(yi)%4,
			b.Lo[2]+int(zi)%6,
		)
		c := int(ci) % 3
		f.Set(p, c, 42.5)
		ok := f.Get(p, c) == 42.5 && f.Data()[f.Index(p, c)] == 42.5
		f.Set(p, c, 0)
		return ok
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestGetSetBoundsPanics(t *testing.T) {
	f := New(box.Cube(2), 1)
	cases := []func(){
		func() { f.Get(ivect.New(2, 0, 0), 0) },
		func() { f.Get(ivect.New(0, 0, 0), 1) },
		func() { f.Get(ivect.New(0, 0, 0), -1) },
		func() { f.Comp(1) },
	}
	for i, fn := range cases {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFillAndComp(t *testing.T) {
	f := New(box.Cube(3), 2)
	f.FillComp(1, 7)
	for _, v := range f.Comp(0) {
		if v != 0 {
			t.Fatal("FillComp leaked into component 0")
		}
	}
	for _, v := range f.Comp(1) {
		if v != 7 {
			t.Fatal("FillComp missed component 1")
		}
	}
	f.Fill(3)
	for _, v := range f.Data() {
		if v != 3 {
			t.Fatal("Fill missed a value")
		}
	}
}

func TestFillRegionClips(t *testing.T) {
	f := New(box.Cube(4), 1)
	f.FillRegion(box.New(ivect.New(2, 2, 2), ivect.New(10, 10, 10)), 0, 1)
	want := 2 * 2 * 2 // clipped region is [2,3]^3
	if got := f.SumComp(f.Box(), 0); got != float64(want) {
		t.Fatalf("SumComp = %v, want %d", got, want)
	}
}

func TestCopyFromIntersection(t *testing.T) {
	src := New(box.Cube(4), 2)
	rnd := rand.New(rand.NewSource(7))
	src.Randomize(rnd, -1, 1)
	dst := New(box.New(ivect.New(2, 2, 2), ivect.New(6, 6, 6)), 2)
	dst.Fill(9)
	dst.CopyFrom(src, box.Cube(100))
	overlap := src.Box().Intersect(dst.Box())
	for c := 0; c < 2; c++ {
		c := c
		dst.Box().ForEach(func(p ivect.IntVect) {
			got := dst.Get(p, c)
			if overlap.Contains(p) {
				if got != src.Get(p, c) {
					t.Fatalf("copy wrong at %v comp %d", p, c)
				}
			} else if got != 9 {
				t.Fatalf("copy wrote outside overlap at %v comp %d", p, c)
			}
		})
	}
}

func TestCopyFromShiftedPeriodicWrap(t *testing.T) {
	// Moving data from the low edge to beyond the high edge, as the periodic
	// exchange does.
	src := New(box.Cube(8), 1)
	src.Box().ForEach(func(p ivect.IntVect) { src.Set(p, 0, float64(p[0])) })
	dst := New(box.Cube(8).Grow(2), 1)
	// Fill dst ghost x in [8,9] from src x in [0,1]: dest p reads src at
	// p + shift with shift = -8 e_x.
	ghost := box.New(ivect.New(8, 0, 0), ivect.New(9, 7, 7))
	dst.CopyFromShifted(src, ghost, ivect.New(-8, 0, 0), 0, 0, 1)
	ghost.ForEach(func(p ivect.IntVect) {
		if got := dst.Get(p, 0); got != float64(p[0]-8) {
			t.Fatalf("wrap at %v = %v, want %v", p, got, float64(p[0]-8))
		}
	})
}

func TestCopyCompRanges(t *testing.T) {
	src := New(box.Cube(3), 4)
	for c := 0; c < 4; c++ {
		src.FillComp(c, float64(c+1))
	}
	dst := New(box.Cube(3), 3)
	dst.CopyFromShifted(src, dst.Box(), ivect.Zero, 2, 1, 2)
	if dst.Get(ivect.Zero, 0) != 0 || dst.Get(ivect.Zero, 1) != 3 || dst.Get(ivect.Zero, 2) != 4 {
		t.Fatalf("comp-range copy got %v %v %v",
			dst.Get(ivect.Zero, 0), dst.Get(ivect.Zero, 1), dst.Get(ivect.Zero, 2))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range comp copy did not panic")
			}
		}()
		dst.CopyFromShifted(src, dst.Box(), ivect.Zero, 3, 0, 2)
	}()
}

func TestPlusAndScale(t *testing.T) {
	a := New(box.Cube(3), 1)
	b := New(box.Cube(3), 1)
	a.Fill(1)
	b.Fill(2)
	a.Plus(b, a.Box(), 0.5)
	for _, v := range a.Data() {
		if v != 2 {
			t.Fatalf("Plus got %v", v)
		}
	}
	a.Scale(3)
	for _, v := range a.Data() {
		if v != 6 {
			t.Fatalf("Scale got %v", v)
		}
	}
}

func TestNormsAndDiff(t *testing.T) {
	f := New(box.Cube(3), 2)
	f.Set(ivect.New(1, 2, 0), 1, -5)
	if got := f.MaxNorm(f.Box()); got != 5 {
		t.Fatalf("MaxNorm = %v", got)
	}
	g := f.Clone()
	if d, _, _ := f.MaxDiff(g, f.Box()); d != 0 {
		t.Fatalf("clone diff = %v", d)
	}
	g.Set(ivect.New(0, 1, 2), 0, 1.5)
	d, at, c := f.MaxDiff(g, f.Box())
	if d != 1.5 || at != ivect.New(0, 1, 2) || c != 0 {
		t.Fatalf("MaxDiff = %v at %v comp %d", d, at, c)
	}
}

func TestSumCompTelescoping(t *testing.T) {
	// Summing a difference field telescopes: a sanity anchor for the
	// conservation checks used on the kernel.
	n := 6
	face := New(box.Cube(n).SurroundingFaces(0), 1)
	rnd := rand.New(rand.NewSource(11))
	face.Randomize(rnd, -1, 1)
	cell := New(box.Cube(n), 1)
	cell.Box().ForEach(func(p ivect.IntVect) {
		cell.Set(p, 0, face.Get(p.Shift(0, 1), 0)-face.Get(p, 0))
	})
	// Sum over a row of cells equals flux(hi end) - flux(lo end).
	row := box.New(ivect.New(0, 3, 4), ivect.New(n-1, 3, 4))
	got := cell.SumComp(row, 0)
	want := face.Get(ivect.New(n, 3, 4), 0) - face.Get(ivect.New(0, 3, 4), 0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("telescoped sum = %v, want %v", got, want)
	}
}

func TestBytes(t *testing.T) {
	f := New(box.Cube(4), 5)
	if f.Bytes() != 4*4*4*5*8 {
		t.Fatalf("Bytes = %d", f.Bytes())
	}
}

func TestAdopt(t *testing.T) {
	b := box.NewSized(ivect.New(-1, 0, 2), ivect.New(2, 3, 4))
	need := b.NumPts() * 2
	buf := make([]float64, need+3) // extra capacity is allowed
	for i := range buf {
		buf[i] = float64(i)
	}
	var f FAB
	f.Adopt(buf, b, 2)
	if f.Box() != b || f.NComp() != 2 {
		t.Fatalf("adopted box %v ncomp %d", f.Box(), f.NComp())
	}
	if len(f.Data()) != need {
		t.Fatalf("data len %d, want %d", len(f.Data()), need)
	}
	// Contents are kept, and the data aliases buf.
	if f.Data()[5] != 5 {
		t.Fatal("Adopt zeroed or copied the buffer")
	}
	f.Set(b.Lo, 0, 42)
	if buf[0] != 42 {
		t.Fatal("adopted FAB does not alias the caller's buffer")
	}
	// Strides must match a New FAB of the same shape.
	ny, nz, nc := New(b, 2).Strides()
	if ay, az, ac := f.Strides(); ay != ny || az != nz || ac != nc {
		t.Fatalf("strides (%d,%d,%d), want (%d,%d,%d)", ay, az, ac, ny, nz, nc)
	}
}

func TestAdoptPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	var f FAB
	b := box.Cube(4)
	expectPanic("short buffer", func() { f.Adopt(make([]float64, 10), b, 1) })
	expectPanic("empty box", func() { f.Adopt(make([]float64, 64), box.Box{Lo: ivect.New(1, 1, 1), Hi: ivect.New(0, 0, 0)}, 1) })
	expectPanic("ncomp", func() { f.Adopt(make([]float64, 64), b, 0) })
}
