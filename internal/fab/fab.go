// Package fab provides FArrayBox-style multi-component arrays over boxes.
//
// Data layout matches the paper's Section III-C: the solution U on a
// three-dimensional grid is stored as [x, y, z, c] with Fortran (column
// major) ordering — x is unit stride and the component index c varies
// slowest, so the individual components of one cell are far apart in memory.
// That layout choice is load-bearing for the study: it is why the flux
// kernels must re-read the velocity component across the whole box and why
// the temporaries in Table I are sized per component.
package fab

import (
	"fmt"
	"math"
	"math/rand"

	"stencilsched/internal/box"
	"stencilsched/internal/ivect"
)

// FAB is a dense float64 array over a box with one or more components.
// It corresponds to Chombo's FArrayBox.
type FAB struct {
	bx    box.Box
	ncomp int
	// Cached strides: the flat offset of point (x,y,z) component c is
	// (x-lo0) + sy*(y-lo1) + sz*(z-lo2) + sc*c.
	sy, sz, sc int
	data       []float64
}

// New allocates a zero-filled FAB with ncomp components over b. It panics
// for an empty box or non-positive component count: an unallocatable FAB is
// always a programming error in solver code.
func New(b box.Box, ncomp int) *FAB {
	if b.IsEmpty() {
		panic("fab: empty box")
	}
	if ncomp <= 0 {
		panic(fmt.Sprintf("fab: ncomp %d must be positive", ncomp))
	}
	sz := b.Size()
	f := &FAB{
		bx:    b,
		ncomp: ncomp,
		sy:    sz[0],
		sz:    sz[0] * sz[1],
		sc:    sz[0] * sz[1] * sz[2],
	}
	f.data = make([]float64, f.sc*ncomp)
	return f
}

// Box returns the box the FAB is defined over.
func (f *FAB) Box() box.Box { return f.bx }

// NComp returns the number of components.
func (f *FAB) NComp() int { return f.ncomp }

// Data returns the underlying storage. The slice is laid out [x,y,z,c]
// column-major; mutating it mutates the FAB. Kernel code uses this together
// with Strides for pointer-offset style addressing, the C++-matching idiom
// described in Section III-C of the paper.
func (f *FAB) Data() []float64 { return f.data }

// Strides returns the y, z and component strides of the flat layout. The x
// stride is always 1.
func (f *FAB) Strides() (sy, sz, sc int) { return f.sy, f.sz, f.sc }

// Index returns the flat offset of point p, component c. It panics if p is
// outside the box or c out of range; stencil inner loops should instead
// compute offsets incrementally from Strides.
func (f *FAB) Index(p ivect.IntVect, c int) int {
	if !f.bx.Contains(p) {
		panic(fmt.Sprintf("fab: point %v outside %v", p, f.bx))
	}
	if c < 0 || c >= f.ncomp {
		panic(fmt.Sprintf("fab: component %d out of range [0,%d)", c, f.ncomp))
	}
	return f.offset(p, c)
}

func (f *FAB) offset(p ivect.IntVect, c int) int {
	return (p[0] - f.bx.Lo[0]) + f.sy*(p[1]-f.bx.Lo[1]) + f.sz*(p[2]-f.bx.Lo[2]) + f.sc*c
}

// Get returns the value at point p, component c.
func (f *FAB) Get(p ivect.IntVect, c int) float64 { return f.data[f.Index(p, c)] }

// Set stores v at point p, component c.
func (f *FAB) Set(p ivect.IntVect, c int, v float64) { f.data[f.Index(p, c)] = v }

// Comp returns the storage of a single component as a slice over the box.
func (f *FAB) Comp(c int) []float64 {
	if c < 0 || c >= f.ncomp {
		panic(fmt.Sprintf("fab: component %d out of range [0,%d)", c, f.ncomp))
	}
	return f.data[c*f.sc : (c+1)*f.sc]
}

// Fill sets every value of every component to v.
func (f *FAB) Fill(v float64) {
	for i := range f.data {
		f.data[i] = v
	}
}

// FillComp sets every value of component c to v.
func (f *FAB) FillComp(c int, v float64) {
	s := f.Comp(c)
	for i := range s {
		s[i] = v
	}
}

// FillRegion sets component c to v on the intersection of r with the box.
func (f *FAB) FillRegion(r box.Box, c int, v float64) {
	f.forRegion(r, func(off int) { f.data[off+c*f.sc] = v })
}

func (f *FAB) forRegion(r box.Box, fn func(off int)) {
	r = r.Intersect(f.bx)
	if r.IsEmpty() {
		return
	}
	for z := r.Lo[2]; z <= r.Hi[2]; z++ {
		for y := r.Lo[1]; y <= r.Hi[1]; y++ {
			base := f.offset(ivect.New(r.Lo[0], y, z), 0)
			for x := 0; x <= r.Hi[0]-r.Lo[0]; x++ {
				fn(base + x)
			}
		}
	}
}

// Randomize fills all components with uniform values in [lo, hi) drawn from
// rnd. Deterministic for a seeded source; used by the equivalence tests.
func (f *FAB) Randomize(rnd *rand.Rand, lo, hi float64) {
	for i := range f.data {
		f.data[i] = lo + (hi-lo)*rnd.Float64()
	}
}

// CopyFrom copies all components of src on the intersection of the two
// boxes with r, mimicking Chombo's FArrayBox::copy. The FABs must have equal
// component counts.
func (f *FAB) CopyFrom(src *FAB, r box.Box) {
	if src.ncomp != f.ncomp {
		panic(fmt.Sprintf("fab: copy ncomp mismatch %d vs %d", src.ncomp, f.ncomp))
	}
	f.CopyFromShifted(src, r, ivect.Zero, 0, 0, f.ncomp)
}

// CopyFromShifted copies n components starting at srcComp of src into
// components starting at dstComp of f. For each destination point p in
// r ∩ f.Box(), the value is read from src at p + shift. It is the motion
// primitive behind the ghost-cell exchange: a periodic wrap is a shifted
// copy.
func (f *FAB) CopyFromShifted(src *FAB, r box.Box, shift ivect.IntVect, srcComp, dstComp, n int) {
	if srcComp < 0 || srcComp+n > src.ncomp || dstComp < 0 || dstComp+n > f.ncomp || n < 0 {
		panic(fmt.Sprintf("fab: copy comps [%d,%d)->[%d,%d) out of range (%d, %d comps)",
			srcComp, srcComp+n, dstComp, dstComp+n, src.ncomp, f.ncomp))
	}
	r = r.Intersect(f.bx).Intersect(src.bx.ShiftVect(shift.Neg()))
	if r.IsEmpty() {
		return
	}
	nx := r.Hi[0] - r.Lo[0] + 1
	for c := 0; c < n; c++ {
		for z := r.Lo[2]; z <= r.Hi[2]; z++ {
			for y := r.Lo[1]; y <= r.Hi[1]; y++ {
				dst := f.offset(ivect.New(r.Lo[0], y, z), dstComp+c)
				so := src.offset(ivect.New(r.Lo[0], y, z).Add(shift), srcComp+c)
				copy(f.data[dst:dst+nx], src.data[so:so+nx])
			}
		}
	}
}

// Plus adds s*src to f on r ∩ f.Box() for all components.
func (f *FAB) Plus(src *FAB, r box.Box, s float64) {
	if src.ncomp != f.ncomp {
		panic(fmt.Sprintf("fab: plus ncomp mismatch %d vs %d", src.ncomp, f.ncomp))
	}
	r = r.Intersect(f.bx).Intersect(src.bx)
	if r.IsEmpty() {
		return
	}
	nx := r.Hi[0] - r.Lo[0] + 1
	for c := 0; c < f.ncomp; c++ {
		for z := r.Lo[2]; z <= r.Hi[2]; z++ {
			for y := r.Lo[1]; y <= r.Hi[1]; y++ {
				d := f.offset(ivect.New(r.Lo[0], y, z), c)
				o := src.offset(ivect.New(r.Lo[0], y, z), c)
				for x := 0; x < nx; x++ {
					f.data[d+x] += s * src.data[o+x]
				}
			}
		}
	}
}

// Scale multiplies every value by s.
func (f *FAB) Scale(s float64) {
	for i := range f.data {
		f.data[i] *= s
	}
}

// SumComp returns the sum of component c over r ∩ f.Box(). The conservation
// tests rely on it: the finite-volume update telescopes, so the interior
// fluxes cancel in this sum.
func (f *FAB) SumComp(r box.Box, c int) float64 {
	var s float64
	f.forRegion(r, func(off int) { s += f.data[off+c*f.sc] })
	return s
}

// MaxNorm returns the max-norm over all components on r ∩ f.Box().
func (f *FAB) MaxNorm(r box.Box) float64 {
	var m float64
	for c := 0; c < f.ncomp; c++ {
		cs := c * f.sc
		f.forRegion(r, func(off int) {
			if a := math.Abs(f.data[off+cs]); a > m {
				m = a
			}
		})
	}
	return m
}

// MaxDiff returns the largest absolute difference between f and o over all
// components of r, together with a point and component where it occurs.
// The FABs must have the same component count; the comparison region is
// clipped to both boxes.
func (f *FAB) MaxDiff(o *FAB, r box.Box) (diff float64, at ivect.IntVect, comp int) {
	if o.ncomp != f.ncomp {
		panic(fmt.Sprintf("fab: diff ncomp mismatch %d vs %d", o.ncomp, f.ncomp))
	}
	r = r.Intersect(f.bx).Intersect(o.bx)
	for c := 0; c < f.ncomp; c++ {
		c := c
		r.ForEach(func(p ivect.IntVect) {
			d := math.Abs(f.data[f.offset(p, c)] - o.data[o.offset(p, c)])
			if d > diff {
				diff, at, comp = d, p, c
			}
		})
	}
	return diff, at, comp
}

// Adopt re-points f at caller-provided storage over b with ncomp
// components, with the same validation as New. buf must hold at least
// b.NumPts()*ncomp values; its contents are kept as-is — unlike New, the
// data is NOT zeroed, so the caller must fully define every value it
// reads. It exists for the scratch arenas, which recycle FAB headers and
// backing storage across executions.
func (f *FAB) Adopt(buf []float64, b box.Box, ncomp int) {
	if b.IsEmpty() {
		panic("fab: empty box")
	}
	if ncomp <= 0 {
		panic(fmt.Sprintf("fab: ncomp %d must be positive", ncomp))
	}
	sz := b.Size()
	need := sz[0] * sz[1] * sz[2] * ncomp
	if len(buf) < need {
		panic(fmt.Sprintf("fab: adopt buffer holds %d values, need %d for %v x%d", len(buf), need, b, ncomp))
	}
	f.bx = b
	f.ncomp = ncomp
	f.sy = sz[0]
	f.sz = sz[0] * sz[1]
	f.sc = sz[0] * sz[1] * sz[2]
	f.data = buf[:need]
}

// Clone returns a deep copy of f.
func (f *FAB) Clone() *FAB {
	c := New(f.bx, f.ncomp)
	copy(c.data, f.data)
	return c
}

// Bytes returns the storage footprint of the FAB's data in bytes. The
// temporary-storage accounting of Table I sums these.
func (f *FAB) Bytes() int64 { return int64(len(f.data)) * 8 }
