package fab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stencilsched/internal/box"
	"stencilsched/internal/ivect"
)

// TestCopyShiftInverseProperty: copying a region out with shift s and back
// with shift -s restores the original values — the algebra the periodic
// exchange relies on.
func TestCopyShiftInverseProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	prop := func(sx, sy, sz int8) bool {
		shift := ivect.New(int(sx)%6, int(sy)%6, int(sz)%6)
		src := New(box.Cube(6), 2)
		src.Randomize(rnd, -3, 3)
		orig := src.Clone()

		// Stage into a large buffer at the shifted location, then copy
		// back with the inverse shift.
		buf := New(box.Cube(6).Grow(8), 2)
		// Dest point p of buf reads src at p+shift: buf holds src shifted
		// by -shift.
		buf.CopyFromShifted(src, box.Cube(6).ShiftVect(shift.Neg()), shift, 0, 0, 2)
		dst := New(box.Cube(6), 2)
		dst.CopyFromShifted(buf, box.Cube(6), shift.Neg(), 0, 0, 2)
		d, _, _ := dst.MaxDiff(orig, box.Cube(6))
		return d == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPlusScaleLinearity: Plus and Scale satisfy the vector-space axioms
// the solver's axpy updates rely on.
func TestPlusScaleLinearity(t *testing.T) {
	rnd := rand.New(rand.NewSource(100))
	prop := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 256
		b := float64(bRaw) / 256
		x := New(box.Cube(4), 1)
		y := New(box.Cube(4), 1)
		x.Randomize(rnd, -2, 2)
		y.Randomize(rnd, -2, 2)

		// (x + a*y) + b*y == x + (a+b)*y up to one rounding each way.
		lhs := x.Clone()
		lhs.Plus(y, lhs.Box(), a)
		lhs.Plus(y, lhs.Box(), b)

		rhs := x.Clone()
		tmp := y.Clone()
		tmp.Scale(a + b)
		rhs.Plus(tmp, rhs.Box(), 1)

		d, _, _ := lhs.MaxDiff(rhs, lhs.Box())
		return d <= 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSumEqualsPointwiseSum: SumComp agrees with explicit iteration on
// arbitrary clipped regions.
func TestSumEqualsPointwiseSum(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	f := New(box.Cube(5), 2)
	f.Randomize(rnd, -1, 1)
	prop := func(x0, y0, z0, x1, y1, z1 int8) bool {
		r := box.New(
			ivect.New(int(x0)%7-1, int(y0)%7-1, int(z0)%7-1),
			ivect.New(int(x1)%7-1, int(y1)%7-1, int(z1)%7-1),
		)
		got := f.SumComp(r, 1)
		var want float64
		r.Intersect(f.Box()).ForEach(func(p ivect.IntVect) { want += f.Get(p, 1) })
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
