package cachesim

import (
	"math/rand"
	"testing"

	"stencilsched/internal/machine"
)

func tiny(size int64, assoc, line int) machine.Cache {
	return machine.Cache{Name: "T", SizeBytes: size, Assoc: assoc, LineBytes: line}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(tiny(1024, 2, 48)); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := New(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := New(tiny(1024, 2, 64), tiny(4096, 2, 128)); err == nil {
		t.Error("mixed line sizes accepted")
	}
	// Non-power-of-two set counts are legal (real L3 slices): 3 sets of 3
	// ways.
	if _, err := New(tiny(64*9, 3, 64)); err != nil {
		t.Errorf("non-power-of-two set count rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	h, err := New(tiny(1024, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0)
	h.Read(8) // same line
	st := h.Stats()[0]
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if h.MemReadLines != 1 || h.MemWriteLines != 0 {
		t.Fatalf("mem lines = %d/%d", h.MemReadLines, h.MemWriteLines)
	}
	if h.DRAMBytes() != 64 {
		t.Fatalf("DRAMBytes = %d", h.DRAMBytes())
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	// One-set, one-way cache: every new line evicts the previous.
	h, err := New(tiny(64, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	h.Write(0) // miss, allocate (1 mem read), dirty
	h.Read(64) // miss, evicts dirty line 0 -> 1 mem write
	if h.MemReadLines != 2 || h.MemWriteLines != 1 {
		t.Fatalf("mem lines = %d/%d", h.MemReadLines, h.MemWriteLines)
	}
}

func TestFlushWritesDirtyLines(t *testing.T) {
	h, err := New(tiny(1024, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	h.Write(0)
	h.Write(64)
	if h.MemWriteLines != 0 {
		t.Fatal("premature writeback")
	}
	h.Flush()
	if h.MemWriteLines != 2 {
		t.Fatalf("flush wrote %d lines, want 2", h.MemWriteLines)
	}
	// Second flush is a no-op.
	h.Flush()
	if h.MemWriteLines != 2 {
		t.Fatal("flush not idempotent")
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way, one set of interest: lines A, B, then touch A, then C must
	// evict B (the least recently used), not A.
	h, err := New(tiny(128, 2, 64)) // 1 set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := uint64(0), uint64(64), uint64(128)
	h.Read(a)
	h.Read(b)
	h.Read(a) // refresh A
	h.Read(c) // evicts B
	h.Read(a) // must still hit
	st := h.Stats()[0]
	if st.Hits != 2 { // the refresh of A and the final A
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
	h.Read(b) // must miss (was evicted)
	if got := h.Stats()[0].Misses; got != 4 {
		t.Fatalf("misses = %d, want 4", got)
	}
}

func TestStreamingWorkingSetRegimes(t *testing.T) {
	// Repeatedly sweep an array: if it fits in cache, second and later
	// sweeps are free; if it exceeds cache, every sweep pays full traffic.
	h, err := New(tiny(8192, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(bytes uint64) {
		for a := uint64(0); a < bytes; a += 8 {
			h.Read(a)
		}
	}
	// Fits: 4 KiB array, 3 sweeps -> 64 lines of traffic total.
	sweep(4096)
	sweep(4096)
	sweep(4096)
	if h.MemReadLines != 64 {
		t.Fatalf("fitting sweeps read %d lines, want 64", h.MemReadLines)
	}
	h.Reset()
	// Exceeds (4x cache): every sweep re-reads everything.
	sweep(32768)
	first := h.MemReadLines
	sweep(32768)
	if h.MemReadLines < 2*first-8 { // allow tiny boundary slack
		t.Fatalf("spilling sweep reused cache: %d then %d", first, h.MemReadLines)
	}
}

func TestMultiLevelFiltering(t *testing.T) {
	// Working set fits L2 but not L1: L1 misses on each sweep, L2 absorbs
	// them, DRAM traffic stays one-pass.
	h, err := New(tiny(1024, 4, 64), tiny(65536, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	ws := uint64(16384)
	for s := 0; s < 4; s++ {
		for a := uint64(0); a < ws; a += 8 {
			h.Read(a)
		}
	}
	if h.MemReadLines != ws/64 {
		t.Fatalf("DRAM reads %d lines, want %d", h.MemReadLines, ws/64)
	}
	st := h.Stats()
	if st[0].HitRate() > 0.95 {
		t.Fatalf("L1 hit rate %.2f unexpectedly high", st[0].HitRate())
	}
	if st[1].HitRate() < 0.7 {
		t.Fatalf("L2 hit rate %.2f unexpectedly low", st[1].HitRate())
	}
}

func TestForMachineBuilds(t *testing.T) {
	for _, m := range machine.All() {
		h, err := ForMachine(m)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		names := h.LevelNames()
		if len(names) != 3 || names[0] != "L1D" || names[2] != "L3" {
			t.Errorf("%s levels = %v", m.Name, names)
		}
	}
}

func TestTrafficConservation(t *testing.T) {
	// Property: for random access streams, after Flush, DRAM read lines >=
	// distinct lines touched, and dirty writebacks <= lines written.
	rnd := rand.New(rand.NewSource(17))
	h, err := New(tiny(2048, 4, 64), tiny(16384, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	written := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		addr := uint64(rnd.Intn(1 << 16))
		if rnd.Intn(2) == 0 {
			h.Write(addr)
			written[addr>>6] = true
		} else {
			h.Read(addr)
		}
		distinct[addr>>6] = true
	}
	h.Flush()
	if h.MemReadLines < uint64(len(distinct)) {
		t.Fatalf("read %d lines < %d distinct", h.MemReadLines, len(distinct))
	}
	if h.MemWriteLines < uint64(len(written)) {
		t.Fatalf("wrote %d lines < %d dirty-distinct", h.MemWriteLines, len(written))
	}
}

func TestReset(t *testing.T) {
	h, _ := New(tiny(1024, 2, 64))
	h.Write(0)
	h.Reset()
	if h.DRAMBytes() != 0 || h.Stats()[0].Accesses != 0 {
		t.Fatal("reset incomplete")
	}
	h.Read(0)
	if h.Stats()[0].Misses != 1 {
		t.Fatal("cache contents survived reset")
	}
}
