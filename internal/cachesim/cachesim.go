// Package cachesim is an execution-driven, multi-level, set-associative
// cache simulator with LRU replacement and write-back/write-allocate
// policy. Together with the address-stream generators in internal/trace it
// substitutes for the Intel VTune bandwidth measurements of the paper's
// Section VI-B: the paper's claims are about the DRAM traffic each
// schedule induces (18.3 GB/s for the spilled baseline vs. 9.4 and <6 GB/s
// for the fused schedule at N = 128), and traffic is exactly what the
// simulator counts.
//
// Simplifications (documented, deliberate): a single access stream (the
// paper's bandwidth profiles are single-thread), inclusive fills on miss,
// dirty-line write-back cascading level by level, and no prefetcher. The
// absence of a prefetcher under-counts nothing for this workload class —
// prefetched lines still cross the DRAM bus — so traffic totals remain the
// right comparison metric.
package cachesim

import (
	"fmt"
	"math/bits"

	"stencilsched/internal/machine"
)

// LevelStats counts one cache level's activity.
type LevelStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty lines pushed to the next level (or memory)
}

// HitRate returns Hits/Accesses (1 for an untouched level).
func (s LevelStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

type level struct {
	name     string
	nsets    uint64
	ways     int
	lineBits uint
	sets     [][]line // each set ordered most-recently-used first
	stats    LevelStats
}

func newLevel(c machine.Cache) (*level, error) {
	if c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / int64(c.LineBytes)
	ways := c.Assoc
	if ways <= 0 || int64(ways) > lines {
		ways = int(lines) // fully associative
	}
	nsets := lines / int64(ways)
	if nsets <= 0 {
		return nil, fmt.Errorf("cachesim: %q has no sets", c.Name)
	}
	// Real L3 slices give non-power-of-two set counts (e.g. 12288 on the
	// Magny-Cours); index by modulo and keep the full line address as tag.
	l := &level{
		name:     c.Name,
		nsets:    uint64(nsets),
		ways:     ways,
		lineBits: uint(bits.TrailingZeros(uint(c.LineBytes))),
		sets:     make([][]line, nsets),
	}
	for i := range l.sets {
		l.sets[i] = make([]line, 0, ways)
	}
	return l, nil
}

// access looks up the line address; on a hit it refreshes LRU order and
// returns (hit=true). On a miss it installs the line, possibly evicting the
// LRU way; the evicted line is returned for write-back cascading.
func (l *level) access(lineAddr uint64, markDirty bool) (hit bool, evicted uint64, evictedDirty bool) {
	set := lineAddr % l.nsets
	tag := lineAddr
	s := l.sets[set]
	l.stats.Accesses++
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			l.stats.Hits++
			ln := s[i]
			if markDirty {
				ln.dirty = true
			}
			copy(s[1:i+1], s[:i]) // move to front
			s[0] = ln
			return true, 0, false
		}
	}
	l.stats.Misses++
	ln := line{tag: tag, valid: true, dirty: markDirty}
	if len(s) < l.ways {
		s = append(s, line{})
		l.sets[set] = s
	} else {
		victim := s[len(s)-1]
		if victim.dirty {
			l.stats.Writebacks++
			evicted = victim.tag
			evictedDirty = true
		}
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = ln
	return false, evicted, evictedDirty
}

// installDirty inserts a written-back line from the level above without
// counting a demand access. It returns any dirty line it displaces.
func (l *level) installDirty(lineAddr uint64) (evicted uint64, evictedDirty bool) {
	set := lineAddr % l.nsets
	tag := lineAddr
	s := l.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			ln := s[i]
			ln.dirty = true
			copy(s[1:i+1], s[:i])
			s[0] = ln
			return 0, false
		}
	}
	ln := line{tag: tag, valid: true, dirty: true}
	if len(s) < l.ways {
		s = append(s, line{})
		l.sets[set] = s
	} else {
		victim := s[len(s)-1]
		if victim.dirty {
			l.stats.Writebacks++
			evicted = victim.tag
			evictedDirty = true
		}
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = ln
	return evicted, evictedDirty
}

// Hierarchy is a chain of cache levels backed by memory.
type Hierarchy struct {
	levels    []*level
	lineBits  uint
	lineBytes uint64
	// MemReadLines and MemWriteLines count cache lines crossing the DRAM
	// interface.
	MemReadLines  uint64
	MemWriteLines uint64
}

// New builds a hierarchy from cache specs ordered nearest first (L1, L2,
// L3). All levels must share a line size.
func New(caches ...machine.Cache) (*Hierarchy, error) {
	if len(caches) == 0 {
		return nil, fmt.Errorf("cachesim: no levels")
	}
	h := &Hierarchy{}
	for i, c := range caches {
		l, err := newLevel(c)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			h.lineBits = l.lineBits
			h.lineBytes = 1 << l.lineBits
		} else if l.lineBits != h.lineBits {
			return nil, fmt.Errorf("cachesim: mixed line sizes")
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// ForMachine builds the L1D/L2/L3 hierarchy of a machine spec.
func ForMachine(m machine.Machine) (*Hierarchy, error) {
	return New(m.L1D, m.L2, m.L3)
}

// Read simulates a load of the 8-byte word at addr.
func (h *Hierarchy) Read(addr uint64) { h.access(addr, false) }

// Write simulates a store to the 8-byte word at addr (write-allocate).
func (h *Hierarchy) Write(addr uint64) { h.access(addr, true) }

func (h *Hierarchy) access(addr uint64, write bool) {
	lineAddr := addr >> h.lineBits
	for i, l := range h.levels {
		hit, evicted, evictedDirty := l.access(lineAddr, write && i == 0)
		if evictedDirty {
			h.writeback(i+1, evicted)
		}
		if hit {
			return
		}
	}
	h.MemReadLines++
}

// writeback pushes a dirty line into level idx (or memory).
func (h *Hierarchy) writeback(idx int, lineAddr uint64) {
	if idx >= len(h.levels) {
		h.MemWriteLines++
		return
	}
	evicted, evictedDirty := h.levels[idx].installDirty(lineAddr)
	if evictedDirty {
		h.writeback(idx+1, evicted)
	}
}

// Flush writes back every dirty line in the hierarchy, completing the
// traffic accounting of a finished kernel.
func (h *Hierarchy) Flush() {
	for i, l := range h.levels {
		for set := range l.sets {
			for w := range l.sets[set] {
				ln := &l.sets[set][w]
				if ln.valid && ln.dirty {
					l.stats.Writebacks++
					ln.dirty = false
					h.writeback(i+1, ln.tag)
				}
			}
		}
	}
}

// DRAMBytes returns the bytes moved across the memory interface so far.
func (h *Hierarchy) DRAMBytes() uint64 {
	return (h.MemReadLines + h.MemWriteLines) * h.lineBytes
}

// Stats returns per-level statistics, nearest level first.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// LevelNames returns the level names, nearest first.
func (h *Hierarchy) LevelNames() []string {
	out := make([]string, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.name
	}
	return out
}

// ResetStats clears counters but keeps cache contents — used to measure
// steady-state traffic after a warm-up pass, the methodology behind the
// Section VI-B comparisons.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.stats = LevelStats{}
	}
	h.MemReadLines, h.MemWriteLines = 0, 0
}

// Reset clears all cache contents and counters.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		for i := range l.sets {
			l.sets[i] = l.sets[i][:0]
		}
		l.stats = LevelStats{}
	}
	h.MemReadLines, h.MemWriteLines = 0, 0
}
