package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPOptions tunes the TCP mesh transport. Zero values select the
// defaults noted per field.
type TCPOptions struct {
	// DialTimeout is the total per-peer connection budget, retries
	// included (default 10s) — peers of a just-launched mesh may not be
	// listening yet.
	DialTimeout time.Duration
	// DialBackoff is the delay between dial retries (default 50ms).
	DialBackoff time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// MaxFrameValues overrides the frame-decode bound when > 0
	// (otherwise the bound passed to ConnectTCP is used).
	MaxFrameValues int
}

func (o TCPOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 10 * time.Second
	}
	return o.DialTimeout
}

func (o TCPOptions) dialBackoff() time.Duration {
	if o.DialBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return o.DialBackoff
}

func (o TCPOptions) writeTimeout() time.Duration {
	if o.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return o.WriteTimeout
}

// tcpConn is one established peer link with its write lock and scratch.
type tcpConn struct {
	mu      sync.Mutex
	c       net.Conn
	scratch []byte
	down    bool
}

// recvItem is what reader goroutines feed the shared inbox: a frame, or
// a peer-down notice.
type recvItem struct {
	f    Frame
	from int
	err  error
}

// TCPTransport is a fully-connected mesh over length-prefixed frames:
// rank i dials every lower rank and accepts every higher one, each
// connection opening with a hello frame that authenticates the dialer's
// rank and cross-checks the mesh size. One reader goroutine per
// connection feeds a shared inbox; a read failure is delivered in-band
// as a peer-down item so a dead peer fails the waiting receive quickly
// instead of letting it ride out the full exchange deadline.
type TCPTransport struct {
	rank, ranks int
	maxValues   int
	writeTO     time.Duration
	conns       []*tcpConn // indexed by peer rank; conns[rank] nil
	inbox       chan recvItem
	done        chan struct{}
	closeOnce   sync.Once
	readers     sync.WaitGroup
}

// ConnectTCP establishes rank's endpoint of an addrs-sized mesh: ln is
// this rank's already-bound listener (addrs[rank] should be its
// address), addrs the peers'. It blocks until every peer link is up or
// the dial budget runs out. maxValues is the frame-decode bound (pass
// the plan's MaxFrameValues). The listener stays open and owned by the
// caller; it is only force-closed to unblock a failed handshake.
func ConnectTCP(ctx context.Context, rank int, ln net.Listener, addrs []string, maxValues int, opt TCPOptions) (*TCPTransport, error) {
	ranks := len(addrs)
	if rank < 0 || rank >= ranks {
		return nil, fmt.Errorf("dist: tcp rank %d of %d", rank, ranks)
	}
	if opt.MaxFrameValues > 0 {
		maxValues = opt.MaxFrameValues
	}
	if maxValues < 1 {
		maxValues = DefaultMaxFrameValues
	}
	t := &TCPTransport{
		rank:      rank,
		ranks:     ranks,
		maxValues: maxValues,
		writeTO:   opt.writeTimeout(),
		conns:     make([]*tcpConn, ranks),
		inbox:     make(chan recvItem, 256),
		done:      make(chan struct{}),
	}

	ctx, cancel := context.WithTimeout(ctx, opt.dialTimeout())
	defer cancel()

	// First failure wins; it cancels the ctx and unblocks the Accept.
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
			ln.Close()
		})
	}
	// Watchdog: a plain ctx timeout must also unblock the Accept.
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	// Accept side: every higher rank dials us and identifies itself
	// with a hello frame.
	if expect := ranks - 1 - rank; expect > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make(map[int]bool)
			for len(seen) < expect {
				c, err := ln.Accept()
				if err != nil {
					fail(fmt.Errorf("dist: rank %d accept: %w", rank, err))
					return
				}
				peer, err := t.readHello(c)
				if err != nil || peer <= rank || peer >= ranks || seen[peer] {
					c.Close()
					if err == nil {
						err = fmt.Errorf("%w: unexpected hello from rank %d", ErrProtocol, peer)
					}
					fail(fmt.Errorf("dist: rank %d handshake: %w", rank, err))
					return
				}
				seen[peer] = true
				t.conns[peer] = &tcpConn{c: c}
			}
		}()
	}
	// Dial side: we dial every lower rank, retrying while it boots.
	for peer := 0; peer < rank; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := t.dialPeer(ctx, addrs[peer], opt)
			if err != nil {
				fail(fmt.Errorf("dist: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
				return
			}
			t.conns[peer] = &tcpConn{c: c}
		}()
	}
	wg.Wait()
	close(stop)
	if failErr != nil {
		t.Close()
		return nil, failErr
	}

	for peer, pc := range t.conns {
		if pc == nil {
			continue
		}
		peer, pc := peer, pc
		t.readers.Add(1)
		go t.readLoop(peer, pc)
	}
	return t, nil
}

func (t *TCPTransport) dialPeer(ctx context.Context, addr string, opt TCPOptions) (net.Conn, error) {
	var d net.Dialer
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			// Hello: Step carries the mesh size so both ends agree on
			// the run's shape before any data flows.
			_, werr := WriteFrame(c, &Frame{Type: TypeHello, Rank: uint16(t.rank), Step: uint32(t.ranks)}, nil)
			if werr != nil {
				c.Close()
				return nil, werr
			}
			return c, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%v (last dial error: %w)", ctx.Err(), err)
		case <-time.After(opt.dialBackoff()):
		}
	}
}

func (t *TCPTransport) readHello(c net.Conn) (int, error) {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	f, _, err := ReadFrame(c, t.maxValues, nil)
	if err != nil {
		return -1, err
	}
	if f.Type != TypeHello {
		return -1, fmt.Errorf("%w: expected hello, got frame type %d", ErrProtocol, f.Type)
	}
	if int(f.Step) != t.ranks {
		return -1, fmt.Errorf("%w: peer rank %d believes the mesh has %d ranks, not %d",
			ErrProtocol, f.Rank, f.Step, t.ranks)
	}
	return int(f.Rank), nil
}

// readLoop feeds peer's frames into the shared inbox until the
// connection dies or the transport closes.
func (t *TCPTransport) readLoop(peer int, pc *tcpConn) {
	defer t.readers.Done()
	var scratch []byte
	for {
		var f Frame
		var err error
		f, scratch, err = ReadFrame(pc.c, t.maxValues, scratch)
		item := recvItem{f: f, from: peer}
		if err != nil {
			select {
			case <-t.done:
				return // closing: the error is ours, not the peer's
			default:
			}
			item = recvItem{from: peer, err: fmt.Errorf("rank %d link: %v: %w", peer, err, ErrPeerDown)}
		}
		select {
		case t.inbox <- item:
		case <-t.done:
			return
		}
		if item.err != nil {
			return
		}
	}
}

func (t *TCPTransport) Rank() int  { return t.rank }
func (t *TCPTransport) Ranks() int { return t.ranks }

// Send writes one frame to peer `to` under the write deadline. A failed
// link is remembered: subsequent sends fail fast with ErrPeerDown.
func (t *TCPTransport) Send(ctx context.Context, to int, f *Frame) error {
	if to < 0 || to >= t.ranks || to == t.rank {
		return fmt.Errorf("%w: send to rank %d of %d", ErrProtocol, to, t.ranks)
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	pc := t.conns[to]
	if pc == nil {
		return fmt.Errorf("rank %d link never established: %w", to, ErrPeerDown)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.down {
		return fmt.Errorf("rank %d link down: %w", to, ErrPeerDown)
	}
	deadline := time.Now().Add(t.writeTO)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	pc.c.SetWriteDeadline(deadline)
	var err error
	pc.scratch, err = WriteFrame(pc.c, f, pc.scratch)
	if err != nil {
		pc.down = true
		pc.c.Close()
		return fmt.Errorf("rank %d write: %v: %w", to, err, ErrPeerDown)
	}
	return nil
}

// Recv returns the next frame from any peer. A broken link surfaces as
// an error wrapping ErrPeerDown.
func (t *TCPTransport) Recv(ctx context.Context) (Frame, error) {
	select {
	case item := <-t.inbox:
		if item.err != nil {
			return Frame{}, item.err
		}
		return item.f, nil
	case <-t.done:
		return Frame{}, ErrClosed
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// Close tears the mesh down: closes every link and waits for the reader
// goroutines, so no goroutine outlives the transport.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		for _, pc := range t.conns {
			if pc != nil {
				pc.mu.Lock()
				pc.down = true
				pc.c.Close()
				pc.mu.Unlock()
			}
		}
	})
	t.readers.Wait()
	return nil
}
