// Wire format: every message is a little-endian length-prefixed frame,
//
//	[4B payload length][payload]
//
// with payload
//
//	[4B magic "SDW1"][1B type][2B rank][4B step][4B motion][4B count][count x 8B float64 bits]
//
// The decoder is hardened the same way checkpoint.Read is: every size is
// validated against an explicit bound *before* any allocation, so a
// crafted length or count returns a typed error instead of a panic or an
// unbounded make. FuzzWireDecode and the corruption corpus in
// wire_test.go hold that line.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	wireMagic  = "SDW1"
	headerSize = 4 + 1 + 2 + 4 + 4 + 4 // magic, type, rank, step, motion, count

	// DefaultMaxFrameValues bounds a frame's float64 count when the
	// caller has no exchange plan to size from: 4 Mi values = 32 MiB,
	// comfortably above any single ghost motion of the paper's domains
	// (a 128^2 face at depth 8 with 5 components is ~0.7 Mi values).
	DefaultMaxFrameValues = 4 << 20
)

// EncodedSize returns the on-wire size of a frame with n data values,
// length prefix included.
func EncodedSize(n int) int { return 4 + headerSize + 8*n }

// AppendFrame appends f's wire encoding (length prefix + payload) to dst.
func AppendFrame(dst []byte, f *Frame) []byte {
	n := len(f.Data)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerSize+8*n))
	dst = append(dst, wireMagic...)
	dst = append(dst, f.Type)
	dst = binary.LittleEndian.AppendUint16(dst, f.Rank)
	dst = binary.LittleEndian.AppendUint32(dst, f.Step)
	dst = binary.LittleEndian.AppendUint32(dst, f.Motion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, v := range f.Data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// EncodeFrame returns f's full wire encoding.
func EncodeFrame(f *Frame) []byte {
	return AppendFrame(make([]byte, 0, EncodedSize(len(f.Data))), f)
}

// DecodeFrame parses one payload (the bytes after the length prefix).
// maxValues bounds the data count; pass a plan's MaxFrameValues, or
// DefaultMaxFrameValues when none is known. Malformed input returns an
// error wrapping ErrProtocol; nothing is allocated beyond the validated
// count.
func DecodeFrame(payload []byte, maxValues int) (Frame, error) {
	if len(payload) < headerSize {
		return Frame{}, fmt.Errorf("%w: payload %d bytes, header needs %d", ErrProtocol, len(payload), headerSize)
	}
	if string(payload[:4]) != wireMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrProtocol, payload[:4])
	}
	f := Frame{
		Type:   payload[4],
		Rank:   binary.LittleEndian.Uint16(payload[5:7]),
		Step:   binary.LittleEndian.Uint32(payload[7:11]),
		Motion: binary.LittleEndian.Uint32(payload[11:15]),
	}
	if f.Type != TypeHello && f.Type != TypeData {
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrProtocol, f.Type)
	}
	count := binary.LittleEndian.Uint32(payload[15:19])
	if maxValues < 0 {
		maxValues = 0
	}
	if int64(count) > int64(maxValues) {
		return Frame{}, fmt.Errorf("%w: frame claims %d values, bound is %d", ErrProtocol, count, maxValues)
	}
	// int64 math: count is already bounded, but keep the comparison
	// overflow-free on 32-bit ints regardless.
	if int64(len(payload)) != int64(headerSize)+8*int64(count) {
		return Frame{}, fmt.Errorf("%w: payload %d bytes does not match %d values", ErrProtocol, len(payload), count)
	}
	if count > 0 {
		f.Data = make([]float64, count)
		for i := range f.Data {
			f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[headerSize+8*i:]))
		}
	}
	return f, nil
}

// ReadFrame reads one length-prefixed frame from r, reusing scratch for
// the payload when it is large enough (the possibly-grown scratch is
// returned). The length prefix is validated against maxValues before any
// allocation: a crafted length cannot force an oversized make, it gets
// ErrProtocol. io.EOF before the first prefix byte is returned verbatim
// so callers can tell a clean close from a truncated frame
// (io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader, maxValues int, scratch []byte) (Frame, []byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return Frame{}, scratch, err
	}
	n := int64(binary.LittleEndian.Uint32(pfx[:]))
	if maxValues < 0 {
		maxValues = 0
	}
	bound := int64(headerSize) + 8*int64(maxValues)
	if n < headerSize || n > bound {
		return Frame{}, scratch, fmt.Errorf("%w: frame length %d outside [%d, %d]", ErrProtocol, n, headerSize, bound)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, scratch, fmt.Errorf("dist: truncated frame: %w", err)
	}
	f, err := DecodeFrame(payload, maxValues)
	return f, scratch, err
}

// WriteFrame writes f's wire encoding to w, reusing scratch (returned
// possibly grown).
func WriteFrame(w io.Writer, f *Frame, scratch []byte) ([]byte, error) {
	scratch = AppendFrame(scratch[:0], f)
	_, err := w.Write(scratch)
	return scratch, err
}
