package dist

import (
	"context"
	"fmt"
	"sync"
)

// FaultHook intercepts every loopback delivery: returning a non-nil
// error fails the send. Tests use it to kill a rank mid-exchange
// deterministically (e.g. return ErrPeerDown on the first frame of
// superstep 1).
type FaultHook func(from, to int, f *Frame) error

// Hub is the in-process loopback fabric: one bounded inbox of encoded
// frames per rank. Every frame still round-trips through the wire
// encoder/decoder, so loopback runs (and therefore the conformance
// sweep) exercise the same serialization path TCP uses.
//
// Killing a rank closes its transport from the inside (its own Send and
// Recv start failing) and marks it dead to peers — frames routed to it
// return ErrPeerDown, and anyone waiting on frames *from* it runs into
// the receive deadline. Frame channels are never closed; liveness is
// signaled through dedicated done channels, so a concurrent Send can
// never panic on a closed channel.
type Hub struct {
	ranks     int
	maxValues int
	fault     FaultHook

	mu      sync.RWMutex
	inboxes []chan []byte
	dead    []chan struct{} // closed when the rank is killed
	closed  chan struct{}
}

// NewHub creates a loopback fabric for `ranks` peers with per-rank
// inboxes of `buffer` frames (a full inbox makes Send return the
// transient ErrBackpressure). maxValues bounds frame decoding; pass the
// plan's MaxFrameValues.
func NewHub(ranks, buffer, maxValues int) *Hub {
	if buffer < 1 {
		buffer = 1
	}
	if maxValues < 1 {
		maxValues = DefaultMaxFrameValues
	}
	h := &Hub{
		ranks:     ranks,
		maxValues: maxValues,
		inboxes:   make([]chan []byte, ranks),
		dead:      make([]chan struct{}, ranks),
		closed:    make(chan struct{}),
	}
	for i := range h.inboxes {
		h.inboxes[i] = make(chan []byte, buffer)
		h.dead[i] = make(chan struct{})
	}
	return h
}

// SetFault installs the delivery fault hook. Call before the run starts.
func (h *Hub) SetFault(f FaultHook) { h.fault = f }

// Kill marks a rank dead: its own transport fails from now on and
// frames routed to it return ErrPeerDown. Idempotent.
func (h *Hub) Kill(rank int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.dead[rank]:
	default:
		close(h.dead[rank])
	}
}

// Close shuts the whole fabric down; all pending and future transport
// calls return ErrClosed. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.closed:
	default:
		close(h.closed)
	}
}

// Transport returns rank's endpoint.
func (h *Hub) Transport(rank int) Transport {
	if rank < 0 || rank >= h.ranks {
		panic(fmt.Sprintf("dist: loopback rank %d of %d", rank, h.ranks))
	}
	return &loopTransport{h: h, rank: rank}
}

type loopTransport struct {
	h    *Hub
	rank int
}

func (t *loopTransport) Rank() int  { return t.rank }
func (t *loopTransport) Ranks() int { return t.h.ranks }

func (t *loopTransport) Send(ctx context.Context, to int, f *Frame) error {
	h := t.h
	if to < 0 || to >= h.ranks {
		return fmt.Errorf("%w: send to rank %d of %d", ErrProtocol, to, h.ranks)
	}
	if hook := h.fault; hook != nil {
		if err := hook(t.rank, to, f); err != nil {
			return err
		}
	}
	enc := EncodeFrame(f)
	h.mu.RLock()
	defer h.mu.RUnlock()
	select {
	case <-h.closed:
		return ErrClosed
	case <-h.dead[t.rank]:
		return fmt.Errorf("rank %d is dead: %w", t.rank, ErrPeerDown)
	case <-h.dead[to]:
		return fmt.Errorf("rank %d is dead: %w", to, ErrPeerDown)
	default:
	}
	select {
	case h.inboxes[to] <- enc:
		return nil
	case <-h.closed:
		return ErrClosed
	case <-h.dead[to]:
		return fmt.Errorf("rank %d is dead: %w", to, ErrPeerDown)
	case <-ctx.Done():
		return ctx.Err()
	default:
		return ErrBackpressure
	}
}

func (t *loopTransport) Recv(ctx context.Context) (Frame, error) {
	h := t.h
	select {
	case enc := <-h.inboxes[t.rank]:
		return DecodeFrame(enc[4:], h.maxValues)
	case <-h.closed:
		return Frame{}, ErrClosed
	case <-h.dead[t.rank]:
		return Frame{}, fmt.Errorf("rank %d is dead: %w", t.rank, ErrPeerDown)
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

func (t *loopTransport) Close() error { return nil }
