package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"stencilsched/internal/cluster"
	"stencilsched/internal/fab"
	"stencilsched/internal/kernel"
)

// validate normalizes cfg and builds its plan.
func (c Config) plan() (*Plan, error) {
	if c.Layout == nil {
		return nil, fmt.Errorf("dist: nil layout")
	}
	if c.Ranks < 1 {
		return nil, fmt.Errorf("dist: %d ranks", c.Ranks)
	}
	if c.Steps < 1 {
		return nil, fmt.Errorf("dist: %d steps", c.Steps)
	}
	if c.Threads < 1 {
		return nil, fmt.Errorf("dist: %d threads per rank", c.Threads)
	}
	if err := c.Variant.Validate(); err != nil {
		return nil, err
	}
	var a *cluster.Assignment
	if c.Assign == nil {
		var err error
		a, err = cluster.Assign(c.Layout, c.Ranks)
		if err != nil {
			return nil, err
		}
	} else {
		if len(c.Assign) != c.Layout.NumBoxes() {
			return nil, fmt.Errorf("dist: assignment covers %d of %d boxes", len(c.Assign), c.Layout.NumBoxes())
		}
		a = &cluster.Assignment{Layout: c.Layout, Ranks: c.Ranks, Of: c.Assign}
	}
	return NewPlan(c.Layout, a, c.HaloK)
}

// Plan exposes the exchange plan a config would run under (for sizing,
// prediction, and tests).
func (c Config) Plan() (*Plan, error) { return c.plan() }

// RunLoopback executes the whole solve in-process: one goroutine per
// rank over a loopback hub sized for the plan. It is the test and
// conformance entry point, and the single-host path of
// stencilsched.SolveDistributed.
func RunLoopback(ctx context.Context, cfg Config) (*Result, error) {
	plan, err := cfg.plan()
	if err != nil {
		return nil, err
	}
	hub := NewHub(len(plan.Ranks), 2*plan.MaxRecvs()+8, plan.MaxFrameValues)
	defer hub.Close()
	return RunLoopbackHub(ctx, cfg, plan, hub)
}

// RunLoopbackHub is RunLoopback against a caller-built hub, the seam
// failure-injection tests use (install a FaultHook, or Kill a rank
// mid-run). The first rank failure cancels the remaining ranks; the
// returned error is the root-cause *RankError, not a secondary
// cancellation. All rank goroutines have exited by return.
func RunLoopbackHub(ctx context.Context, cfg Config, plan *Plan, hub *Hub) (*Result, error) {
	ranks := len(plan.Ranks)
	start := time.Now()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*RankResult, ranks)
	errs := make([]error, ranks)
	done := make(chan int, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		go func() {
			results[r], errs[r] = RunRank(rctx, cfg, plan, hub.Transport(r))
			if errs[r] != nil {
				cancel() // fail fast: unblock peers waiting on this rank
			}
			done <- r
		}()
	}
	for i := 0; i < ranks; i++ {
		<-done
	}

	if err := firstError(errs); err != nil {
		return nil, err
	}
	res := &Result{Plan: plan, PerRank: make([]RankResult, ranks), WallSec: time.Since(start).Seconds()}
	res.Fabs = make([]*fab.FAB, plan.Layout.NumBoxes())
	for r, rr := range results {
		res.PerRank[r] = *rr
		res.Stats.Add(rr.Stats)
		for i, bi := range rr.Boxes {
			b := plan.Layout.Boxes[bi]
			out := fab.New(b, kernel.NComp)
			out.CopyFrom(rr.Fabs[i], b)
			res.Fabs[bi] = out
		}
	}
	return res, nil
}

// firstError picks the root cause: the lowest-ranked failure that is
// not a secondary cancellation, falling back to any failure at all.
func firstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return fallback
}

// RunTCP executes one rank of a multi-process solve over TCP: it joins
// the mesh (ln must already listen on addrs[rank]) and runs its share
// of the plan. All processes must be launched with identical configs;
// the hello handshake cross-checks the mesh size. The transport is torn
// down before return, whatever happens.
func RunTCP(ctx context.Context, cfg Config, rank int, ln net.Listener, addrs []string, opt TCPOptions) (*RankResult, error) {
	plan, err := cfg.plan()
	if err != nil {
		return nil, err
	}
	if len(addrs) != len(plan.Ranks) {
		return nil, fmt.Errorf("dist: %d addresses for %d ranks", len(addrs), len(plan.Ranks))
	}
	tr, err := ConnectTCP(ctx, rank, ln, addrs, plan.MaxFrameValues, opt)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return RunRank(ctx, cfg, plan, tr)
}
