package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"stencilsched/internal/box"
	"stencilsched/internal/cluster"
	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
	"stencilsched/internal/kernel"
	"stencilsched/internal/layout"
	"stencilsched/internal/sched"
)

const testDt = 1.0 / 64

// testField is a deterministic splitmix-style point hash in [0.25, 1.75].
func testField(seed int64) func(p ivect.IntVect, c int) float64 {
	return func(p ivect.IntVect, c int) float64 {
		h := uint64(seed) ^ 0x9e3779b97f4a7c15
		for _, v := range [4]int{p[0], p[1], p[2], c} {
			h ^= uint64(int64(v))
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
		}
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return 0.25 + 1.5*float64(h>>11)/float64(1<<53)
	}
}

func testLayout(t *testing.T, edge, boxN int, periodic [3]bool) *layout.Layout {
	t.Helper()
	l, err := layout.Decompose(box.Cube(edge), boxN, periodic)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	return l
}

// oracleAdvance advances the level with the standard single-process
// per-step exchange and the reference kernel — the ground truth every
// distributed run must match bitwise.
func oracleAdvance(l *layout.Layout, field func(ivect.IntVect, int) float64, steps int) *layout.LevelData {
	ld := layout.NewLevelData(l, kernel.NComp, kernel.NGhost)
	ld.FillFromFunction(1, field)
	acc := make([]*fab.FAB, len(l.Boxes))
	for i, b := range l.Boxes {
		acc[i] = fab.New(b, kernel.NComp)
	}
	for s := 0; s < steps; s++ {
		ld.Exchange(1)
		for i, b := range l.Boxes {
			acc[i].Fill(0)
			kernel.Reference(ld.Fabs[i], acc[i], b)
			ld.Fabs[i].Plus(acc[i], b, -testDt)
		}
	}
	return ld
}

func mustVariant(t *testing.T, name string) sched.Variant {
	t.Helper()
	v, err := sched.ByName(name)
	if err != nil {
		t.Fatalf("variant %q: %v", name, err)
	}
	return v
}

func assertMatchesOracle(t *testing.T, res *Result, ld *layout.LevelData, label string) {
	t.Helper()
	for i, b := range ld.Layout.Boxes {
		if d, at, c := res.Fabs[i].MaxDiff(ld.Fabs[i], b); d != 0 {
			t.Fatalf("%s: box %d differs from oracle by %g at %v comp %d", label, i, d, at, c)
		}
	}
}

func TestPlanPairsSendsAndRecvs(t *testing.T) {
	l := testLayout(t, 12, 4, [3]bool{true, true, false})
	a, err := cluster.Assign(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(l, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth != 2*kernel.NGhost {
		t.Fatalf("depth %d", p.Depth)
	}
	sends := map[uint32]Send{}
	nsend := 0
	for _, rp := range p.Ranks {
		for _, s := range rp.Sends {
			if _, dup := sends[s.Motion]; dup {
				t.Fatalf("motion %d sent twice", s.Motion)
			}
			sends[s.Motion] = s
			nsend++
		}
	}
	nrecv := 0
	for _, rp := range p.Ranks {
		for _, rc := range rp.Recvs {
			s, ok := sends[rc.Motion]
			if !ok {
				t.Fatalf("recv motion %d has no send", rc.Motion)
			}
			if s.To != rp.Rank {
				t.Fatalf("motion %d sent to rank %d but expected by rank %d", rc.Motion, s.To, rp.Rank)
			}
			if a.Of[s.SrcBox] != rc.From {
				t.Fatalf("motion %d: src box owner %d, recv expects %d", rc.Motion, a.Of[s.SrcBox], rc.From)
			}
			if !s.Region.Equal(rc.Region) {
				t.Fatalf("motion %d: send region %v != recv region %v", rc.Motion, s.Region, rc.Region)
			}
			if n := rc.Region.NumPts() * kernel.NComp; n > p.MaxFrameValues {
				t.Fatalf("region %v larger than MaxFrameValues %d", rc.Region, p.MaxFrameValues)
			}
			nrecv++
		}
	}
	if nsend != nrecv || nsend == 0 {
		t.Fatalf("%d sends vs %d recvs", nsend, nrecv)
	}
	// The remote split must agree with the cluster model's accounting.
	st := cluster.Analyze(layout.NewCopier(l, p.Depth), a, kernel.NComp)
	if st.Messages != nsend {
		t.Fatalf("plan has %d remote motions, cluster.Analyze says %d", nsend, st.Messages)
	}
}

func TestPlanRejectsInfeasibleHalo(t *testing.T) {
	l := testLayout(t, 8, 4, [3]bool{true, true, true})
	a, err := cluster.Assign(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 5*2 = 10 > periodic extent 8: the copier's single-shift
	// periodic images cannot fill that halo.
	if _, err := NewPlan(l, a, 5); err == nil {
		t.Fatal("expected halo-depth validation error")
	}
	if _, err := NewPlan(l, a, 0); err == nil {
		t.Fatal("expected K >= 1 validation error")
	}
}

func TestShellPiecesPartition(t *testing.T) {
	outer := box.New(ivect.New(-2, -1, 0), ivect.New(9, 8, 7))
	inner := box.New(ivect.New(1, 1, 2), ivect.New(5, 6, 5))
	pieces := shellPieces(outer, inner, 0)
	count := map[ivect.IntVect]int{}
	for _, pc := range pieces {
		if !outer.ContainsBox(pc.region) {
			t.Fatalf("piece %v escapes outer %v", pc.region, outer)
		}
		pc.region.ForEach(func(p ivect.IntVect) { count[p]++ })
	}
	outer.ForEach(func(p ivect.IntVect) {
		want := 1
		if inner.Contains(p) {
			want = 0
		}
		if count[p] != want {
			t.Fatalf("point %v covered %d times, want %d", p, count[p], want)
		}
	})
}

// TestDistMatrix is the acceptance matrix: for one variant of each
// schedule family, every rank count in {1,2,4,8} and halo depth in
// {1,2,4}, the distributed run must match the single-level reference
// oracle bit for bit (which also makes all rank counts match each
// other).
func TestDistMatrix(t *testing.T) {
	families := []string{
		"Baseline-CLO: P>=Box",
		"Shift-Fuse-CLI: P<Box",
		"Blocked WF-CLO-8: P<Box",
		"Shift-Fuse OT-8: P>=Box",
	}
	l := testLayout(t, 8, 4, [3]bool{true, true, true})
	field := testField(42)
	const steps = 5
	ld := oracleAdvance(l, field, steps)
	for _, name := range families {
		v := mustVariant(t, name)
		for _, ranks := range []int{1, 2, 4, 8} {
			for _, haloK := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s ranks=%d K=%d", name, ranks, haloK)
				res, err := RunLoopback(context.Background(), Config{
					Layout: l, Ranks: ranks, Variant: v, HaloK: haloK,
					Steps: steps, Dt: testDt, Threads: 2, Init: field,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertMatchesOracle(t, res, ld, label)
				if res.Stats.Supersteps == 0 {
					t.Fatalf("%s: no supersteps accounted", label)
				}
				if ranks > 1 && res.Stats.MessagesSent == 0 {
					t.Fatalf("%s: no remote messages on a multi-rank periodic layout", label)
				}
				if res.Stats.MessagesSent != res.Stats.MessagesRecv {
					t.Fatalf("%s: %d sent vs %d received", label, res.Stats.MessagesSent, res.Stats.MessagesRecv)
				}
			}
		}
	}
}

// TestDistNonPeriodic exercises the domain clipping: regions are
// clipped at physical boundaries only, and untouched boundary ghosts
// stay zero exactly like the oracle's.
func TestDistNonPeriodic(t *testing.T) {
	for _, periodic := range [][3]bool{
		{false, false, false},
		{true, false, true},
	} {
		l := testLayout(t, 8, 4, periodic)
		field := testField(7)
		const steps = 3
		ld := oracleAdvance(l, field, steps)
		for _, haloK := range []int{1, 2} {
			res, err := RunLoopback(context.Background(), Config{
				Layout: l, Ranks: 2, Variant: mustVariant(t, "Shift-Fuse-CLO: P>=Box"),
				HaloK: haloK, Steps: steps, Dt: testDt, Threads: 1, Init: field,
			})
			if err != nil {
				t.Fatalf("periodic=%v K=%d: %v", periodic, haloK, err)
			}
			assertMatchesOracle(t, res, ld, fmt.Sprintf("periodic=%v K=%d", periodic, haloK))
		}
	}
}

// TestDistInteriorOverlap runs boxes large enough for a non-empty
// interior, so the overlapped receive path (interior computed while
// frames land) is exercised, and cross-checks NoOverlap produces the
// same bits.
func TestDistInteriorOverlap(t *testing.T) {
	l := testLayout(t, 12, 6, [3]bool{true, true, true})
	field := testField(99)
	const steps = 4
	ld := oracleAdvance(l, field, steps)
	base := Config{
		Layout: l, Ranks: 4, Variant: mustVariant(t, "Basic-Sched OT-4: P<Box"),
		HaloK: 2, Steps: steps, Dt: testDt, Threads: 2, Init: field,
	}
	res, err := RunLoopback(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, res, ld, "overlapped")
	noOv := base
	noOv.NoOverlap = true
	res2, err := RunLoopback(context.Background(), noOv)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, res2, ld, "no-overlap")
	if res.Stats.RecomputedCells != res2.Stats.RecomputedCells {
		t.Fatalf("recompute accounting differs: %d vs %d",
			res.Stats.RecomputedCells, res2.Stats.RecomputedCells)
	}
	if res.Stats.RecomputedCells == 0 {
		t.Fatal("K=2 run recomputed nothing")
	}
}

// TestRunTCP runs a real 3-rank mesh over 127.0.0.1 sockets and checks
// every rank's boxes against the loopback run bit for bit.
func TestRunTCP(t *testing.T) {
	l := testLayout(t, 8, 4, [3]bool{true, true, true})
	field := testField(5)
	cfg := Config{
		Layout: l, Ranks: 3, Variant: mustVariant(t, "Shift-Fuse OT-4: P>=Box"),
		HaloK: 2, Steps: 4, Dt: testDt, Threads: 1, Init: field,
	}
	want, err := RunLoopback(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	lns := make([]net.Listener, cfg.Ranks)
	addrs := make([]string, cfg.Ranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	results := make([]*RankResult, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = RunTCP(context.Background(), cfg, r, lns[r], addrs, TCPOptions{})
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, rr := range results {
		for i, bi := range rr.Boxes {
			b := l.Boxes[bi]
			if d, at, c := rr.Fabs[i].MaxDiff(want.Fabs[bi], b); d != 0 {
				t.Fatalf("tcp rank %d box %d differs from loopback by %g at %v comp %d",
					rr.Rank, bi, d, at, c)
			}
		}
		if rr.Stats.MessagesSent == 0 {
			t.Fatalf("tcp rank %d sent nothing", rr.Rank)
		}
	}
}

// TestTCPMeshSizeMismatch: a dialer with a different rank count must be
// rejected by the hello cross-check.
func TestTCPMeshSizeMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	acceptErr := make(chan error, 1)
	go func() {
		// Rank 0 of a 2-mesh accepts rank 1.
		tr, err := ConnectTCP(context.Background(), 0, ln, []string{addr, "ignored"}, 1024, TCPOptions{})
		if tr != nil {
			tr.Close()
		}
		acceptErr <- err
	}()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Hello claiming a 3-rank mesh.
	if _, err := WriteFrame(c, &Frame{Type: TypeHello, Rank: 1, Step: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptErr; err == nil {
		t.Fatal("expected mesh-size mismatch error")
	}
}

// TestDistTemporalComposition is the deep-halo x temporal-blocking
// composition check: multi-rank runs whose intra-superstep engine is
// the internal/temporal tiled wavefront must match the per-step
// reference oracle bit for bit, across rank counts, halo depths, tile
// edges and boundary conditions — including a step count that leaves a
// partial final superstep.
func TestDistTemporalComposition(t *testing.T) {
	for _, periodic := range [][3]bool{
		{true, true, true},
		{true, false, true},
	} {
		l := testLayout(t, 8, 4, periodic)
		field := testField(23)
		const steps = 5 // HaloK=2 leaves a 1-step final superstep
		ld := oracleAdvance(l, field, steps)
		for _, ranks := range []int{1, 2, 4} {
			for _, haloK := range []int{1, 2} {
				for _, tile := range []int{0, 3} {
					label := fmt.Sprintf("temporal periodic=%v ranks=%d K=%d tile=%d",
						periodic, ranks, haloK, tile)
					res, err := RunLoopback(context.Background(), Config{
						Layout: l, Ranks: ranks, HaloK: haloK,
						Temporal: true, TemporalTile: tile,
						Steps: steps, Dt: testDt, Threads: 2, Init: field,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertMatchesOracle(t, res, ld, label)
					if haloK > 1 && res.Stats.RecomputedCells == 0 {
						t.Fatalf("%s: deep-halo run recomputed nothing", label)
					}
				}
			}
		}
	}
}

// TestDistTemporalMatchesSubstepEngine pins the two intra-rank engines
// against each other directly (stronger than both matching the oracle:
// it also compares ghost regions' stats accounting).
func TestDistTemporalMatchesSubstepEngine(t *testing.T) {
	l := testLayout(t, 12, 6, [3]bool{true, true, false})
	field := testField(31)
	base := Config{
		Layout: l, Ranks: 3, Variant: mustVariant(t, "Baseline-CLO: P>=Box"),
		HaloK: 2, Steps: 4, Dt: testDt, Threads: 2, Init: field,
	}
	want, err := RunLoopback(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := base
	tcfg.Temporal = true
	tcfg.TemporalTile = 4
	got, err := RunLoopback(context.Background(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range l.Boxes {
		if d, at, c := got.Fabs[i].MaxDiff(want.Fabs[i], b); d != 0 {
			t.Fatalf("box %d: temporal engine differs from sub-step engine by %g at %v comp %d", i, d, at, c)
		}
	}
	if got.Stats.RecomputedCells != want.Stats.RecomputedCells {
		t.Fatalf("recompute accounting differs: temporal %d vs sub-step %d",
			got.Stats.RecomputedCells, want.Stats.RecomputedCells)
	}
	if got.Stats.MessagesSent != want.Stats.MessagesSent {
		t.Fatalf("message accounting differs: %d vs %d", got.Stats.MessagesSent, want.Stats.MessagesSent)
	}
}
