package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"stencilsched/internal/box"
	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
	"stencilsched/internal/kernel"
	"stencilsched/internal/temporal"
	"stencilsched/internal/variants"
)

// runner executes one rank's share of the level.
type runner struct {
	cfg  Config
	plan *Plan
	rank int
	rp   *RankPlan
	tr   Transport

	fabs map[int]*fab.FAB // box index -> deep-ghosted solution FAB
	accs map[int]*fab.FAB // box index -> divergence accumulator
	outs map[int]*fab.FAB // box index -> temporal-sweep output (Temporal only)

	pending    map[pendKey]Frame
	pendingCap int
	packBuf    []float64

	stats Stats
}

type pendKey struct {
	step   uint32
	motion uint32
}

// RunRank executes the whole solve for the transport's rank against an
// already-built plan. It performs one deep ghost exchange per superstep
// (send, local copies, receive — with the receive overlapped against
// interior compute unless cfg.NoOverlap), then HaloK explicit update
// sub-steps over shrinking regions. Any failure is returned as a
// *RankError; by the time RunRank returns, no goroutine it started is
// left running.
func RunRank(ctx context.Context, cfg Config, plan *Plan, tr Transport) (*RankResult, error) {
	rank := tr.Rank()
	if rank < 0 || rank >= len(plan.Ranks) {
		return nil, fmt.Errorf("dist: rank %d outside plan of %d ranks", rank, len(plan.Ranks))
	}
	r := &runner{
		cfg:  cfg,
		plan: plan,
		rank: rank,
		rp:   &plan.Ranks[rank],
		tr:   tr,
		fabs: map[int]*fab.FAB{},
		accs: map[int]*fab.FAB{},
		outs: map[int]*fab.FAB{},
	}
	r.pending = map[pendKey]Frame{}
	r.pendingCap = 2*len(r.rp.Recvs) + 16

	for _, bi := range r.rp.Boxes {
		b := plan.Layout.Boxes[bi]
		f := fab.New(b.Grow(plan.Depth), kernel.NComp)
		if cfg.Init != nil {
			// Valid cells only — ghost cells start zero, exactly like
			// layout.LevelData, so physical-boundary ghosts match the
			// reference oracle bit for bit.
			for c := 0; c < kernel.NComp; c++ {
				c := c
				b.ForEach(func(p ivect.IntVect) { f.Set(p, c, cfg.Init(p, c)) })
			}
		}
		r.fabs[bi] = f
		r.accs[bi] = fab.New(r.clipNonPeriodic(b.Grow((plan.HaloK-1)*kernel.NGhost)), kernel.NComp)
		if cfg.Temporal {
			// The temporal sweep writes stepped values here (tiles read
			// their neighbors' pre-step state from the solution FAB, so
			// the sweep cannot run in place).
			r.outs[bi] = fab.New(b, kernel.NComp)
		}
	}

	super := 0
	for step0 := 0; step0 < cfg.Steps; step0 += plan.HaloK {
		k := plan.HaloK
		if rem := cfg.Steps - step0; rem < k {
			k = rem
		}
		if err := ctx.Err(); err != nil {
			return nil, &RankError{Rank: rank, Peer: -1, Step: super, Op: "step", Err: err}
		}
		if err := r.superstep(ctx, super, k); err != nil {
			return nil, err
		}
		r.stats.Supersteps++
		super++
	}

	res := &RankResult{Rank: rank, Boxes: r.rp.Boxes, Stats: r.stats}
	for _, bi := range r.rp.Boxes {
		res.Fabs = append(res.Fabs, r.fabs[bi])
	}
	return res, nil
}

// clipNonPeriodic clamps r to the domain in non-periodic directions
// only: periodic directions compute in image coordinates (the image of
// a wrapped cell gets bit-identical updates to its domain counterpart),
// while beyond a physical boundary there is nothing to compute.
func (r *runner) clipNonPeriodic(b box.Box) box.Box {
	dom := r.plan.Layout.Domain
	for d := 0; d < 3; d++ {
		if r.plan.Layout.Periodic[d] {
			continue
		}
		if b.Lo[d] < dom.Lo[d] {
			b.Lo[d] = dom.Lo[d]
		}
		if b.Hi[d] > dom.Hi[d] {
			b.Hi[d] = dom.Hi[d]
		}
	}
	return b
}

// region returns the compute region of sub-step j (0-based) of a
// k-sub-step superstep for owned box b: the valid box grown by the halo
// budget left after the remaining sub-steps, domain-clipped only in
// non-periodic directions.
func (r *runner) region(b box.Box, j, k int) box.Box {
	return r.clipNonPeriodic(b.Grow((k - 1 - j) * kernel.NGhost))
}

func (r *runner) hook(super int, phase string) error {
	if r.cfg.Hook == nil {
		return nil
	}
	if err := r.cfg.Hook(r.rank, super, phase); err != nil {
		return &RankError{Rank: r.rank, Peer: -1, Step: super, Op: "hook(" + phase + ")", Err: err}
	}
	return nil
}

// superstep runs one exchange plus k update sub-steps.
func (r *runner) superstep(ctx context.Context, super, k int) error {
	if err := r.hook(super, "exchange"); err != nil {
		return err
	}
	if err := r.sendAll(ctx, super); err != nil {
		return err
	}
	for _, lc := range r.rp.Local {
		r.fabs[lc.DstBox].CopyFromShifted(r.fabs[lc.SrcBox], lc.Region, lc.Shift, 0, 0, kernel.NComp)
		r.stats.LocalCopies++
	}

	if r.cfg.Temporal {
		return r.temporalSubsteps(ctx, super, k)
	}

	// Receive overlapped with interior compute: remote frames write only
	// ghost cells (motion regions never intersect a valid box), and the
	// interior — the valid box shrunk by one stencil radius — reads only
	// valid cells, so the two touch disjoint memory. The boundary shell
	// waits for the exchange to finish.
	recvStart := time.Now()
	recvDone := make(chan error, 1)
	go func() { recvDone <- r.recvAll(ctx, super) }()

	var interiors, shells []pieceRef
	for _, bi := range r.rp.Boxes {
		b := r.plan.Layout.Boxes[bi]
		reg := r.region(b, 0, k)
		interior := b.Grow(-kernel.NGhost)
		if r.cfg.NoOverlap || interior.IsEmpty() {
			shells = append(shells, pieceRef{bi, reg})
			continue
		}
		interiors = append(interiors, pieceRef{bi, interior})
		shells = append(shells, shellPieces(reg, interior, bi)...)
	}

	computeStart := time.Now()
	for _, bi := range r.rp.Boxes {
		r.accs[bi].Fill(0)
	}
	ierr := r.hook(super, "substep")
	if ierr == nil && len(interiors) > 0 {
		r.execPieces(interiors)
	}
	interiorDur := time.Since(computeStart)

	// Always join the receiver before touching the boundary (or
	// returning): no goroutine may outlive the superstep.
	waitStart := time.Now()
	rerr := <-recvDone
	waitDur := time.Since(waitStart)
	recvDur := time.Since(recvStart)
	r.stats.ExchangeSec += recvDur.Seconds()
	if hidden := recvDur - waitDur; hidden > 0 {
		r.stats.ExchangeHiddenSec += hidden.Seconds()
	}
	if ierr != nil {
		return ierr
	}
	if rerr != nil {
		return rerr
	}

	t0 := time.Now()
	r.execPieces(shells)
	for _, bi := range r.rp.Boxes {
		b := r.plan.Layout.Boxes[bi]
		reg := r.region(b, 0, k)
		r.fabs[bi].Plus(r.accs[bi], reg, -r.cfg.Dt)
		r.stats.RecomputedCells += int64(reg.NumPts() - b.NumPts())
	}
	r.stats.ComputeSec += interiorDur.Seconds() + time.Since(t0).Seconds()

	// Remaining sub-steps run on halo data alone, each on a region one
	// stencil radius smaller — the recomputation that deep halos trade
	// for messages.
	for j := 1; j < k; j++ {
		if err := r.hook(super, "substep"); err != nil {
			return err
		}
		t0 := time.Now()
		var pieces []pieceRef
		for _, bi := range r.rp.Boxes {
			reg := r.region(r.plan.Layout.Boxes[bi], j, k)
			r.accs[bi].Fill(0)
			pieces = append(pieces, pieceRef{bi, reg})
		}
		r.execPieces(pieces)
		for _, bi := range r.rp.Boxes {
			b := r.plan.Layout.Boxes[bi]
			reg := r.region(b, j, k)
			r.fabs[bi].Plus(r.accs[bi], reg, -r.cfg.Dt)
			r.stats.RecomputedCells += int64(reg.NumPts() - b.NumPts())
		}
		r.stats.ComputeSec += time.Since(t0).Seconds()
	}
	return nil
}

// temporalSubsteps finishes an already-sent exchange, then runs the
// superstep's k sub-steps as one K-step temporal sweep per owned box —
// the deep-halo/temporal-blocking composition: the exchange fills a
// k-deep halo once, and the intra-node wavefront steps each spatial
// tile k times while its working set is cache-resident. temporal.Step
// clips sub-step regions exactly like r.region does, and its kernel is
// the same compiled series schedule, so the output is bitwise identical
// to the sub-step path. Compute always waits for the exchange here:
// the sweep's first tile already reads the full k-deep halo.
func (r *runner) temporalSubsteps(ctx context.Context, super, k int) error {
	recvStart := time.Now()
	rerr := r.recvAll(ctx, super)
	r.stats.ExchangeSec += time.Since(recvStart).Seconds()
	if rerr != nil {
		return rerr
	}
	// Hook parity with the sub-step path: one "substep" checkpoint per
	// fused Euler step, so fault injection by phase count still lands.
	for j := 0; j < k; j++ {
		if err := r.hook(super, "substep"); err != nil {
			return err
		}
	}
	t0 := time.Now()
	cfg := temporal.Config{K: k, TileEdge: r.cfg.TemporalTile, Threads: r.cfg.Threads, Dt: r.cfg.Dt}
	for _, bi := range r.rp.Boxes {
		b := r.plan.Layout.Boxes[bi]
		clip := r.clipNonPeriodic(b.Grow(k * kernel.NGhost))
		if err := temporal.Step(r.fabs[bi], r.outs[bi], b, clip, cfg); err != nil {
			return &RankError{Rank: r.rank, Peer: -1, Step: super, Op: "temporal", Err: err}
		}
		r.fabs[bi].CopyFrom(r.outs[bi], b)
		for j := 0; j < k; j++ {
			reg := r.region(b, j, k)
			r.stats.RecomputedCells += int64(reg.NumPts() - b.NumPts())
		}
	}
	r.stats.ComputeSec += time.Since(t0).Seconds()
	return nil
}

// pieceRef names one compute region of one owned box.
type pieceRef struct {
	boxIdx int
	region box.Box
}

// execPieces runs the configured variant over the pieces. Pieces of the
// same box share its accumulator on disjoint regions, so P>=Box
// families may execute them concurrently; every registered schedule is
// bitwise partition-invariant (the conformance sweep's differential
// property), so the split does not change a single output bit.
func (r *runner) execPieces(pieces []pieceRef) {
	if len(pieces) == 0 {
		return
	}
	states := make([]variants.State, 0, len(pieces))
	for _, pc := range pieces {
		if pc.region.IsEmpty() {
			continue
		}
		states = append(states, variants.State{
			Valid: pc.region,
			Phi0:  r.fabs[pc.boxIdx],
			Phi1:  r.accs[pc.boxIdx],
		})
	}
	if len(states) == 0 {
		return
	}
	variants.ExecLevel(r.cfg.Variant, states, r.cfg.Threads)
}

// shellPieces decomposes outer minus inner into up to six disjoint
// slabs (z-low, z-high, then y-low/y-high, then x-low/x-high), the
// boundary-shell work list computed after the exchange lands.
func shellPieces(outer, inner box.Box, boxIdx int) []pieceRef {
	inner = inner.Intersect(outer)
	if inner.IsEmpty() {
		return []pieceRef{{boxIdx, outer}}
	}
	var out []pieceRef
	add := func(b box.Box) {
		if !b.IsEmpty() {
			out = append(out, pieceRef{boxIdx, b})
		}
	}
	rest := outer
	for d := 2; d >= 1; d-- {
		lo := rest
		lo.Hi[d] = inner.Lo[d] - 1
		add(lo)
		hi := rest
		hi.Lo[d] = inner.Hi[d] + 1
		add(hi)
		rest.Lo[d], rest.Hi[d] = inner.Lo[d], inner.Hi[d]
	}
	lo := rest
	lo.Hi[0] = inner.Lo[0] - 1
	add(lo)
	hi := rest
	hi.Lo[0] = inner.Hi[0] + 1
	add(hi)
	return out
}

// sendAll packs and ships every outgoing motion, retrying transient
// backpressure with bounded exponential backoff.
func (r *runner) sendAll(ctx context.Context, super int) error {
	for _, snd := range r.rp.Sends {
		r.packBuf = packRegion(r.fabs[snd.SrcBox], snd.Region, snd.Shift, r.packBuf)
		f := Frame{Type: TypeData, Rank: uint16(r.rank), Step: uint32(super), Motion: snd.Motion, Data: r.packBuf}
		var err error
		for attempt := 0; ; attempt++ {
			err = r.tr.Send(ctx, snd.To, &f)
			if err == nil || !errors.Is(err, ErrBackpressure) || attempt >= r.cfg.maxRetries() {
				break
			}
			r.stats.Retries++
			backoff := r.cfg.retryBackoff() << uint(attempt)
			select {
			case <-ctx.Done():
				err = ctx.Err()
			case <-time.After(backoff):
				continue
			}
			break
		}
		if err != nil {
			return &RankError{Rank: r.rank, Peer: snd.To, Step: super, Op: "send", Err: err}
		}
		r.stats.MessagesSent++
		r.stats.BytesSent += int64(EncodedSize(len(f.Data)))
	}
	return nil
}

// recvAll collects this superstep's expected frames under the exchange
// deadline, buffering early frames from peers already a superstep ahead
// and rejecting anything the plan does not predict.
func (r *runner) recvAll(ctx context.Context, super int) error {
	need := len(r.rp.Recvs)
	if need == 0 {
		return nil
	}
	seen := make([]bool, need)
	got := 0
	for key, f := range r.pending {
		if key.step == uint32(super) {
			delete(r.pending, key)
			if err := r.applyFrame(super, f, seen, &got); err != nil {
				return err
			}
		}
	}
	rctx, cancel := context.WithTimeout(ctx, r.cfg.exchangeTimeout())
	defer cancel()
	for got < need {
		f, err := r.tr.Recv(rctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				return &RankError{Rank: r.rank, Peer: r.missingPeer(seen), Step: super, Op: "recv", Err: ErrTimeout}
			}
			return &RankError{Rank: r.rank, Peer: r.missingPeer(seen), Step: super, Op: "recv", Err: err}
		}
		switch {
		case f.Type != TypeData:
			return &RankError{Rank: r.rank, Peer: int(f.Rank), Step: super, Op: "recv",
				Err: fmt.Errorf("%w: unexpected frame type %d mid-run", ErrProtocol, f.Type)}
		case f.Step == uint32(super):
			if err := r.applyFrame(super, f, seen, &got); err != nil {
				return err
			}
		case f.Step > uint32(super):
			// A neighbor that already has everything it needs may run
			// one superstep ahead and send early; park its frames.
			if len(r.pending) >= r.pendingCap {
				return &RankError{Rank: r.rank, Peer: int(f.Rank), Step: super, Op: "recv",
					Err: fmt.Errorf("%w: %d buffered future frames (peer %d is at superstep %d)",
						ErrProtocol, len(r.pending), f.Rank, f.Step)}
			}
			r.pending[pendKey{f.Step, f.Motion}] = f
		default:
			return &RankError{Rank: r.rank, Peer: int(f.Rank), Step: super, Op: "recv",
				Err: fmt.Errorf("%w: stale frame for superstep %d while at %d", ErrProtocol, f.Step, super)}
		}
	}
	return nil
}

func (r *runner) applyFrame(super int, f Frame, seen []bool, got *int) error {
	idx, ok := r.rp.recvIndex[f.Motion]
	if !ok {
		return &RankError{Rank: r.rank, Peer: int(f.Rank), Step: super, Op: "recv",
			Err: fmt.Errorf("%w: unknown motion %d", ErrProtocol, f.Motion)}
	}
	rc := r.rp.Recvs[idx]
	if rc.From != int(f.Rank) {
		return &RankError{Rank: r.rank, Peer: int(f.Rank), Step: super, Op: "recv",
			Err: fmt.Errorf("%w: motion %d belongs to rank %d, sent by rank %d", ErrProtocol, f.Motion, rc.From, f.Rank)}
	}
	if seen[idx] {
		return &RankError{Rank: r.rank, Peer: rc.From, Step: super, Op: "recv",
			Err: fmt.Errorf("%w: duplicate motion %d", ErrProtocol, f.Motion)}
	}
	if err := unpackRegion(r.fabs[rc.DstBox], rc.Region, f.Data); err != nil {
		return &RankError{Rank: r.rank, Peer: rc.From, Step: super, Op: "recv", Err: err}
	}
	seen[idx] = true
	*got++
	r.stats.MessagesRecv++
	r.stats.BytesRecv += int64(EncodedSize(len(f.Data)))
	return nil
}

// missingPeer names the first peer whose frames are still outstanding.
func (r *runner) missingPeer(seen []bool) int {
	for i, s := range seen {
		if !s {
			return r.rp.Recvs[i].From
		}
	}
	return -1
}
