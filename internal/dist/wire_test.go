package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func frameEqual(a, b *Frame) bool {
	if a.Type != b.Type || a.Rank != b.Rank || a.Step != b.Step || a.Motion != b.Motion {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func TestWireRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Rank: 3, Step: 8},
		{Type: TypeData, Rank: 0, Step: 0, Motion: 0, Data: nil},
		{Type: TypeData, Rank: 65535, Step: 1<<32 - 1, Motion: 7,
			Data: []float64{0, -0.0, 1.5, math.Inf(1), math.NaN(), 1e-308}},
	}
	var buf bytes.Buffer
	var scratch []byte
	var err error
	for i := range frames {
		scratch, err = WriteFrame(&buf, &frames[i], scratch)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var read []byte
	for i := range frames {
		var f Frame
		f, read, err = ReadFrame(&buf, DefaultMaxFrameValues, read)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !frameEqual(&f, &frames[i]) {
			t.Fatalf("frame %d round-trip mismatch: %+v vs %+v", i, f, frames[i])
		}
	}
	if _, _, err := ReadFrame(&buf, DefaultMaxFrameValues, read); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// corruptCorpus mirrors internal/checkpoint/corruption_test.go: every
// corrupted, truncated, or oversized frame must produce an error —
// never a panic, never an allocation sized by attacker-controlled
// bytes.
func corruptCorpus() map[string][]byte {
	good := EncodeFrame(&Frame{Type: TypeData, Rank: 1, Step: 2, Motion: 3, Data: []float64{1, 2, 3}})
	flip := func(off int) []byte {
		c := append([]byte(nil), good...)
		c[off] ^= 0xff
		return c
	}
	oversized := append([]byte(nil), good...)
	// count field: claim 2^31 values while carrying 3.
	binary.LittleEndian.PutUint32(oversized[4+headerSize-4:], 1<<31-1)
	undersized := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(undersized[4+headerSize-4:], 2)
	shortPrefix := good[:3]
	truncatedHeader := good[:4+headerSize-5]
	truncatedPayload := good[:len(good)-7]
	hugeLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(hugeLen[:4], 1<<30)
	tinyLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(tinyLen[:4], headerSize-1)
	return map[string][]byte{
		"short-prefix":      shortPrefix,
		"truncated-header":  truncatedHeader,
		"truncated-payload": truncatedPayload,
		"bad-magic":         flip(4),
		"bad-type":          flip(4 + 4),
		"oversized-count":   oversized,
		"undersized-count":  undersized,
		"huge-length":       hugeLen,
		"tiny-length":       tinyLen,
		"empty":             nil,
	}
}

func TestWireCorruptionCorpus(t *testing.T) {
	for name, data := range corruptCorpus() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %s: %v", name, r)
				}
			}()
			_, _, err := ReadFrame(bytes.NewReader(data), 1024, nil)
			if err == nil {
				t.Fatalf("%s: expected error", name)
			}
			if name == "empty" {
				if err != io.EOF {
					t.Fatalf("empty stream: want io.EOF, got %v", err)
				}
				return
			}
			// Truncations surface as io errors; malformed payloads as
			// ErrProtocol. Either way the error must be typed, not a panic.
			if !errors.Is(err, ErrProtocol) &&
				!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("%s: untyped error %v", name, err)
			}
		})
	}
}

func TestDecodeRejectsOversizedBeforeAllocating(t *testing.T) {
	// A 23-byte payload claiming 2^29 values must be rejected from the
	// header alone; DecodeFrame never allocates count*8 bytes.
	payload := make([]byte, headerSize)
	copy(payload, wireMagic)
	payload[4] = TypeData
	binary.LittleEndian.PutUint32(payload[headerSize-4:], 1<<29)
	if _, err := DecodeFrame(payload, 1<<29+1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("length/count mismatch not rejected: %v", err)
	}
	if _, err := DecodeFrame(payload, 64); !errors.Is(err, ErrProtocol) {
		t.Fatalf("count above maxValues not rejected: %v", err)
	}
}

// FuzzWireDecode drives arbitrary bytes through both decode paths: the
// decoder must never panic, and any frame it does accept must re-encode
// to the identical payload.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeFrame(&Frame{Type: TypeData, Rank: 1, Step: 2, Motion: 3, Data: []float64{1, 2}}))
	f.Add(EncodeFrame(&Frame{Type: TypeHello, Rank: 0, Step: 4}))
	for _, c := range corruptCorpus() {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 {
			fr, err := DecodeFrame(data[4:], 1024)
			if err == nil {
				enc := EncodeFrame(&fr)
				if !bytes.Equal(enc[4:], data[4:]) {
					t.Fatalf("accepted payload does not re-encode identically")
				}
			} else if !errors.Is(err, ErrProtocol) {
				t.Fatalf("DecodeFrame returned untyped error %v", err)
			}
		}
		fr, _, err := ReadFrame(bytes.NewReader(data), 1024, nil)
		if err == nil {
			enc := EncodeFrame(&fr)
			if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
				t.Fatalf("accepted stream frame does not re-encode to its input prefix")
			}
		}
	})
}
