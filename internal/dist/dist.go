// Package dist executes a level across N ranks — the distributed-memory
// runtime the paper's whole premise assumes (Section I: boxes live on
// MPI ranks, exchanging ghost cells each step) but which internal/cluster
// only *predicts*. Each rank owns the boxes a cluster.Assign decomposition
// gives it, holds one deep-ghosted FAB per box, and advances the level in
// supersteps: one ghost exchange filling a K-deep halo, then K explicit
// Euler sub-steps over shrinking regions, recomputing halo cells instead
// of re-communicating them — the distributed-memory extension of the
// paper's §V-D overlapped-tile family (deep halos trade recomputation
// for messages exactly as Wittmann/Hager/Wellein's multicore-aware
// temporal blocking does across nodes).
//
// Two transports implement the same length-prefixed frame protocol
// (wire.go): an in-process loopback hub for tests and the conformance
// harness, and a TCP mesh for real multi-process runs. Every frame —
// loopback included — goes through the wire encoder/decoder, so the
// conformance sweep exercises the serialization path on every build.
//
// The runtime is bitwise-reproducible: the sub-step regions are clipped
// to the domain only in non-periodic directions (periodic directions
// compute in image coordinates), unfilled physical-boundary ghost cells
// stay zero exactly as layout.LevelData leaves them, and every cell
// update funnels through kernel.FaceAvg with a fixed expression order —
// so a multi-rank run at any halo depth K matches the single-rank run
// and the kernel.Reference oracle bit for bit (internal/conform's
// distributed check proves this on every build).
//
// Failure is typed, never silent: sends retry transient backpressure
// with bounded exponential backoff, receives carry a per-superstep
// deadline, and a dead peer surfaces as a *RankError wrapping ErrPeerDown
// or ErrTimeout — a killed rank fails the step, it cannot deadlock it.
package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
	"stencilsched/internal/layout"
	"stencilsched/internal/sched"
)

// Sentinel failure classes. Runner errors wrap one of these inside a
// *RankError, so callers can errors.Is on the class and errors.As for
// the rank/step/op context.
var (
	// ErrTimeout: a peer's frames did not arrive within ExchangeTimeout.
	ErrTimeout = errors.New("dist: exchange timed out")
	// ErrPeerDown: the transport knows the peer is gone (closed
	// connection, killed loopback rank).
	ErrPeerDown = errors.New("dist: peer down")
	// ErrClosed: the transport was shut down under the caller.
	ErrClosed = errors.New("dist: transport closed")
	// ErrBackpressure: a peer's inbox stayed full through every retry.
	ErrBackpressure = errors.New("dist: peer inbox full after retries")
	// ErrProtocol: a peer sent a frame that violates the exchange plan
	// (unknown motion, wrong payload size, duplicate, stale step).
	ErrProtocol = errors.New("dist: protocol violation")
)

// RankError is the typed failure a rank surfaces: which rank failed,
// during which operation of which superstep, and — when known — which
// peer was involved. It wraps the underlying cause for errors.Is.
type RankError struct {
	Rank int    // rank reporting the failure
	Peer int    // peer involved, or -1 when none
	Step int    // superstep index
	Op   string // "send", "recv", "compute", "hook", "init"
	Err  error
}

func (e *RankError) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("dist: rank %d %s failed at superstep %d (peer %d): %v",
			e.Rank, e.Op, e.Step, e.Peer, e.Err)
	}
	return fmt.Sprintf("dist: rank %d %s failed at superstep %d: %v", e.Rank, e.Op, e.Step, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Frame type bytes (see wire.go for the layout).
const (
	// TypeHello opens a TCP connection: it authenticates the dialing
	// rank and cross-checks the mesh size.
	TypeHello byte = 1
	// TypeData carries one motion's packed region values.
	TypeData byte = 2
)

// Frame is one protocol message. Data is the packed region payload in
// component-major, x-fastest order (empty for hello frames).
type Frame struct {
	Type   byte
	Rank   uint16 // sending rank
	Step   uint32 // superstep index (mesh size for hello frames)
	Motion uint32 // global motion ID (dialer's rank count for hello)
	Data   []float64
}

// Transport moves frames between ranks. Implementations must be safe
// for one concurrent sender and one concurrent receiver per rank (the
// runner overlaps receives with interior compute).
type Transport interface {
	// Rank is the local rank this endpoint serves.
	Rank() int
	// Ranks is the mesh size.
	Ranks() int
	// Send delivers f to peer `to`. A full peer inbox returns
	// ErrBackpressure (transient — the runner retries with backoff); a
	// dead peer returns ErrPeerDown.
	Send(ctx context.Context, to int, f *Frame) error
	// Recv blocks for the next frame, honoring ctx's deadline.
	Recv(ctx context.Context) (Frame, error)
	// Close releases the endpoint. Safe to call twice.
	Close() error
}

// TestHook is called at the runner's phase boundaries ("exchange",
// "interior", "substep") and fails the rank when it returns an error —
// the deterministic fault-injection point the kill-a-rank-mid-compute
// tests use. Production runs leave it nil.
type TestHook func(rank, superstep int, phase string) error

// Config describes one distributed level solve.
type Config struct {
	// Layout is the global domain decomposition. All three directions
	// are treated as given by Layout.Periodic.
	Layout *layout.Layout
	// Ranks is the number of peers.
	Ranks int
	// Assign optionally maps each box index to a rank. Nil uses the
	// chunked cluster.Assign policy. When set it must be surjective onto
	// [0, Ranks): every rank owns at least one box.
	Assign []int
	// Variant is the on-node schedule each rank runs (any registered
	// family; the overlapped-tile variants are the natural match for
	// deep halos).
	Variant sched.Variant
	// HaloK is the halo depth in kernel applications: the exchange fills
	// HaloK*kernel.NGhost ghost layers and each rank then advances HaloK
	// steps before the next exchange. 1 is a plain per-step exchange.
	HaloK int
	// Steps is the total number of time steps.
	Steps int
	// Dt is the time-step size of the explicit update phi -= dt*divF.
	Dt float64
	// Threads is the per-rank thread count.
	Threads int
	// Init sets the initial condition on valid cells (ghosts start
	// zero, exactly like layout.LevelData.FillFromFunction).
	Init func(p ivect.IntVect, c int) float64
	// ExchangeTimeout bounds each superstep's receive phase per rank.
	// Zero defaults to 10s.
	ExchangeTimeout time.Duration
	// MaxRetries bounds send retries on transient backpressure. Zero
	// defaults to 8; negative means none.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubled per attempt.
	// Zero defaults to 200µs.
	RetryBackoff time.Duration
	// NoOverlap disables the interior/boundary split that hides the
	// exchange behind interior compute (for A/B measurement).
	NoOverlap bool
	// Temporal switches each rank's intra-superstep engine to the
	// internal/temporal tiled wavefront: the HaloK sub-steps of a
	// superstep run as one K-step temporal sweep per owned box, with
	// spatial tiles of edge TemporalTile carrying their own cache-deep
	// working sets. The result is bitwise identical to the sub-step
	// path (both compose the same flux-divergence kernel), so the two
	// engines differ only in locality. Variant is ignored when set, and
	// compute always waits for the exchange (no interior overlap).
	Temporal bool
	// TemporalTile is the spatial tile edge of the temporal sweep;
	// <= 0 runs each owned box as a single tile. Only read when
	// Temporal is set.
	TemporalTile int
	// Hook is the fault-injection test hook (see TestHook).
	Hook TestHook
}

const (
	defaultExchangeTimeout = 10 * time.Second
	defaultMaxRetries      = 8
	defaultRetryBackoff    = 200 * time.Microsecond
)

func (c Config) exchangeTimeout() time.Duration {
	if c.ExchangeTimeout <= 0 {
		return defaultExchangeTimeout
	}
	return c.ExchangeTimeout
}

func (c Config) maxRetries() int {
	if c.MaxRetries == 0 {
		return defaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return c.RetryBackoff
}

// Stats accounts one rank's execution (or, summed, the whole level's).
type Stats struct {
	// Supersteps is the number of exchange+compute rounds executed.
	Supersteps int64
	// MessagesSent / BytesSent count remote frames (payload bytes on the
	// wire, length prefix included).
	MessagesSent int64
	BytesSent    int64
	// MessagesRecv / BytesRecv count remote frames applied.
	MessagesRecv int64
	BytesRecv    int64
	// LocalCopies counts same-rank ghost motions (shared-memory copies).
	LocalCopies int64
	// Retries counts send retries due to transient backpressure.
	Retries int64
	// RecomputedCells counts halo cells computed beyond the owned valid
	// regions — the paper's recomputation currency that deep halos spend
	// to buy fewer messages.
	RecomputedCells int64
	// ComputeSec is time spent executing kernels and accumulating
	// updates; ExchangeSec is the receive phase's wall time; of that,
	// ExchangeHiddenSec overlapped interior compute.
	ComputeSec        float64
	ExchangeSec       float64
	ExchangeHiddenSec float64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Supersteps += o.Supersteps
	s.MessagesSent += o.MessagesSent
	s.BytesSent += o.BytesSent
	s.MessagesRecv += o.MessagesRecv
	s.BytesRecv += o.BytesRecv
	s.LocalCopies += o.LocalCopies
	s.Retries += o.Retries
	s.RecomputedCells += o.RecomputedCells
	s.ComputeSec += o.ComputeSec
	s.ExchangeSec += o.ExchangeSec
	s.ExchangeHiddenSec += o.ExchangeHiddenSec
}

// OverlapRatio is the fraction of exchange time hidden behind interior
// compute (0 when no exchange time was observed).
func (s *Stats) OverlapRatio() float64 {
	if s.ExchangeSec <= 0 {
		return 0
	}
	return s.ExchangeHiddenSec / s.ExchangeSec
}

// RankResult is one rank's outcome: its box indices, their deep-ghosted
// FABs (valid data is the authoritative solution), and its accounting.
type RankResult struct {
	Rank  int
	Boxes []int
	Fabs  []*fab.FAB
	Stats Stats
}

// Result is a whole-level outcome gathered from all ranks.
type Result struct {
	Plan *Plan
	// PerRank holds each rank's result, indexed by rank.
	PerRank []RankResult
	// Stats sums all ranks.
	Stats Stats
	// Fabs holds one valid-region FAB per layout box (gathered).
	Fabs []*fab.FAB
	// WallSec is the coordinator's wall time for the whole solve.
	WallSec float64
}

// SumComp sums component c over all valid cells — a conserved quantity
// under the periodic advection update and a cheap cross-process
// checksum for TCP runs.
func (r *Result) SumComp(c int) float64 {
	var s float64
	for i, f := range r.Fabs {
		s += f.SumComp(r.Plan.Layout.Boxes[i], c)
	}
	return s
}
