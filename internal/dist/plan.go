package dist

import (
	"fmt"

	"stencilsched/internal/box"
	"stencilsched/internal/cluster"
	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
	"stencilsched/internal/kernel"
	"stencilsched/internal/layout"
)

// Send is one outgoing remote motion: pack SrcBox's FAB over
// Region+Shift and deliver it to rank To, which applies it at Region.
type Send struct {
	Motion uint32
	To     int
	SrcBox int
	Region box.Box
	Shift  ivect.IntVect
}

// Recv is one expected incoming remote motion: apply the payload into
// DstBox's FAB at Region.
type Recv struct {
	Motion uint32
	From   int
	DstBox int
	Region box.Box
}

// LocalCopy is a same-rank ghost motion executed as a shared-memory
// copy (dst at Region reads src at Region+Shift, the layout.Motion
// convention).
type LocalCopy struct {
	SrcBox, DstBox int
	Region         box.Box
	Shift          ivect.IntVect
}

// RankPlan is one rank's share of the exchange plan.
type RankPlan struct {
	Rank  int
	Boxes []int // owned box indices, layout order
	Local []LocalCopy
	Sends []Send
	Recvs []Recv
	// recvIndex maps a motion ID to its Recvs position.
	recvIndex map[uint32]int
}

// Plan is the precomputed distributed exchange schedule: the layout's
// ghost motions at depth HaloK*kernel.NGhost, split per rank into local
// copies, sends, and expected receives, with globally unique motion IDs
// (deterministic layout order) so a frame names exactly one region.
type Plan struct {
	Layout *layout.Layout
	Assign *cluster.Assignment
	// HaloK is the halo depth in kernel applications; Depth the
	// resulting ghost-layer count HaloK*kernel.NGhost.
	HaloK, Depth int
	Ranks        []RankPlan
	// MaxFrameValues is the largest single message's float64 count —
	// the wire-decode bound transports use.
	MaxFrameValues int
}

// NewPlan builds the exchange plan for layout l under assignment a with
// halo depth haloK kernel applications. Periodic directions constrain
// the depth: the copier's periodic images are single-domain shifts, so
// HaloK*NGhost ghost layers must not exceed the domain extent in any
// periodic direction (deeper halos would need double wrapping).
func NewPlan(l *layout.Layout, a *cluster.Assignment, haloK int) (*Plan, error) {
	if haloK < 1 {
		return nil, fmt.Errorf("dist: halo depth K=%d (need >= 1)", haloK)
	}
	if a.Layout != l {
		return nil, fmt.Errorf("dist: assignment belongs to a different layout")
	}
	depth := haloK * kernel.NGhost
	size := l.Domain.Size()
	for d := 0; d < 3; d++ {
		if l.Periodic[d] && depth > size[d] {
			return nil, fmt.Errorf("dist: halo depth %d (K=%d) exceeds periodic domain extent %d in dim %d",
				depth, haloK, size[d], d)
		}
	}
	if len(a.Of) != l.NumBoxes() {
		return nil, fmt.Errorf("dist: assignment covers %d of %d boxes", len(a.Of), l.NumBoxes())
	}
	owned := make([]int, a.Ranks)
	for i, r := range a.Of {
		if r < 0 || r >= a.Ranks {
			return nil, fmt.Errorf("dist: box %d assigned to rank %d of %d", i, r, a.Ranks)
		}
		owned[r]++
	}
	for r, n := range owned {
		if n == 0 {
			return nil, fmt.Errorf("dist: rank %d owns no boxes", r)
		}
	}

	p := &Plan{Layout: l, Assign: a, HaloK: haloK, Depth: depth, Ranks: make([]RankPlan, a.Ranks)}
	for r := range p.Ranks {
		p.Ranks[r] = RankPlan{Rank: r, recvIndex: map[uint32]int{}}
	}
	for i, r := range a.Of {
		p.Ranks[r].Boxes = append(p.Ranks[r].Boxes, i)
	}

	// Global motion IDs follow the copier's deterministic order:
	// destination box ascending, then plan order within the box. Both
	// sides of a remote motion derive the same ID from the same copier.
	cop := layout.NewCopier(l, depth)
	var id uint32
	for _, ms := range cop.Motions() {
		for _, m := range ms {
			src, dst := a.Of[m.Src], a.Of[m.Dst]
			if src == dst {
				p.Ranks[src].Local = append(p.Ranks[src].Local, LocalCopy{
					SrcBox: m.Src, DstBox: m.Dst, Region: m.Region, Shift: m.Shift,
				})
			} else {
				p.Ranks[src].Sends = append(p.Ranks[src].Sends, Send{
					Motion: id, To: dst, SrcBox: m.Src, Region: m.Region, Shift: m.Shift,
				})
				rp := &p.Ranks[dst]
				rp.recvIndex[id] = len(rp.Recvs)
				rp.Recvs = append(rp.Recvs, Recv{Motion: id, From: src, DstBox: m.Dst, Region: m.Region})
				if n := m.Region.NumPts() * kernel.NComp; n > p.MaxFrameValues {
					p.MaxFrameValues = n
				}
			}
			id++
		}
	}
	return p, nil
}

// MaxRecvs returns the largest per-superstep receive count over ranks —
// the loopback inbox sizing input.
func (p *Plan) MaxRecvs() int {
	m := 0
	for _, rp := range p.Ranks {
		if len(rp.Recvs) > m {
			m = len(rp.Recvs)
		}
	}
	return m
}

// RemoteMessages returns the total sends per exchange across ranks.
func (p *Plan) RemoteMessages() int {
	n := 0
	for _, rp := range p.Ranks {
		n += len(rp.Sends)
	}
	return n
}

// packRegion flattens f over r (reading at p+shift) in component-major,
// x-fastest order — the payload layout unpackRegion reverses.
func packRegion(f *fab.FAB, r box.Box, shift ivect.IntVect, out []float64) []float64 {
	out = out[:0]
	for c := 0; c < f.NComp(); c++ {
		c := c
		r.ForEach(func(p ivect.IntVect) {
			out = append(out, f.Get(p.Add(shift), c))
		})
	}
	return out
}

// unpackRegion applies a packed payload into f at r.
func unpackRegion(f *fab.FAB, r box.Box, data []float64) error {
	want := r.NumPts() * f.NComp()
	if len(data) != want {
		return fmt.Errorf("%w: payload has %d values, region %v needs %d", ErrProtocol, len(data), r, want)
	}
	i := 0
	for c := 0; c < f.NComp(); c++ {
		c := c
		r.ForEach(func(p ivect.IntVect) {
			f.Set(p, c, data[i])
			i++
		})
	}
	return nil
}
