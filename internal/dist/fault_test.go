package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func faultConfig(t *testing.T, ranks int) Config {
	return Config{
		Layout:          testLayout(t, 8, 4, [3]bool{true, true, true}),
		Ranks:           ranks,
		Variant:         mustVariant(t, "Baseline-CLO: P>=Box"),
		HaloK:           2,
		Steps:           6,
		Dt:              testDt,
		Threads:         1,
		Init:            testField(11),
		ExchangeTimeout: 500 * time.Millisecond,
	}
}

// checkNoGoroutineLeak snapshots the goroutine count and fails the test
// if it has not returned to (near) the baseline shortly after the run.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillMidExchange kills a rank while its peers are mid-exchange:
// the coordinator must surface a typed *RankError within the configured
// exchange timeout, and every rank goroutine must exit.
func TestKillMidExchange(t *testing.T) {
	cfg := faultConfig(t, 4)
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	hub := NewHub(len(plan.Ranks), 2*plan.MaxRecvs()+8, plan.MaxFrameValues)
	defer hub.Close()
	const victim = 2
	var once sync.Once
	hub.SetFault(func(from, to int, f *Frame) error {
		// At superstep 1, the victim dies instead of sending: its peers
		// are left waiting on ghost frames that never arrive.
		if from == victim && f.Type == TypeData && f.Step >= 1 {
			once.Do(func() { hub.Kill(victim) })
			return fmt.Errorf("rank %d killed by fault injector: %w", victim, ErrPeerDown)
		}
		return nil
	})
	start := time.Now()
	_, err = RunLoopbackHub(context.Background(), cfg, plan, hub)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected failure after killing a rank")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a *RankError: %v", err)
	}
	if !errors.Is(err, ErrPeerDown) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("error is neither peer-down nor timeout: %v", err)
	}
	if errors.Is(re.Err, context.Canceled) {
		t.Fatalf("coordinator surfaced a secondary cancellation, not the root cause: %v", err)
	}
	// Detection must happen within the configured timeout (plus
	// scheduling slack), not the 10s default and never a deadlock.
	if elapsed > 5*time.Second {
		t.Fatalf("failure took %v, configured timeout is %v", elapsed, cfg.ExchangeTimeout)
	}
	checkNoGoroutineLeak(t, before)
}

// TestKillMidCompute fails a rank between sub-steps (inside the compute
// phase, no exchange in flight) and checks the typed error carries the
// failing rank.
func TestKillMidCompute(t *testing.T) {
	cfg := faultConfig(t, 4)
	const victim = 1
	injected := errors.New("injected compute fault")
	cfg.Hook = func(rank, super int, phase string) error {
		if rank == victim && super == 1 && phase == "substep" {
			return injected
		}
		return nil
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	_, err := RunLoopback(context.Background(), cfg)
	if err == nil {
		t.Fatal("expected failure from compute fault")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a *RankError: %v", err)
	}
	if re.Rank != victim {
		t.Fatalf("RankError blames rank %d, fault was on %d: %v", re.Rank, victim, err)
	}
	if !errors.Is(err, injected) {
		t.Fatalf("injected cause lost: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure took %v", elapsed)
	}
	checkNoGoroutineLeak(t, before)
}

// TestSilentDeathTimesOut runs one rank of a two-rank plan with nobody
// on the other end: the recv wait must end in ErrTimeout close to the
// configured ExchangeTimeout, never a hang.
func TestSilentDeathTimesOut(t *testing.T) {
	cfg := faultConfig(t, 2)
	cfg.ExchangeTimeout = 300 * time.Millisecond
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(len(plan.Ranks), 2*plan.MaxRecvs()+8, plan.MaxFrameValues)
	defer hub.Close()
	start := time.Now()
	_, err = RunRank(context.Background(), cfg, plan, hub.Transport(0))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Op != "recv" {
		t.Fatalf("timeout not typed as a recv RankError: %v", err)
	}
	if re.Peer != 1 {
		t.Fatalf("timeout blames peer %d, want 1: %v", re.Peer, err)
	}
	if elapsed < cfg.ExchangeTimeout/2 || elapsed > 10*cfg.ExchangeTimeout+2*time.Second {
		t.Fatalf("timeout fired after %v, configured %v", elapsed, cfg.ExchangeTimeout)
	}
}

// TestDistCancel: a context cancellation mid-run surfaces promptly and
// cleanly (style of internal/jobs/cancel_race_test.go).
func TestDistCancel(t *testing.T) {
	cfg := faultConfig(t, 4)
	cfg.Steps = 200 // long enough that cancellation lands mid-run
	release := make(chan struct{})
	var gate sync.Once
	cfg.Hook = func(rank, super int, phase string) error {
		if super >= 2 {
			gate.Do(func() { close(release) })
		}
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-release
		cancel()
	}()
	before := runtime.NumGoroutine()
	_, err := RunLoopback(ctx, cfg)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("unexpected cancellation surface: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestDistStressRace hammers concurrent loopback runs, one of which is
// killed and one cancelled, under -race: exercises the exchange
// goroutines, the fault path, and the coordinator teardown racing each
// other.
func TestDistStressRace(t *testing.T) {
	const runs = 6
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := faultConfig(t, 4)
			cfg.Steps = 8
			cfg.Init = testField(int64(100 + i))
			plan, err := cfg.Plan()
			if err != nil {
				t.Error(err)
				return
			}
			hub := NewHub(len(plan.Ranks), 2*plan.MaxRecvs()+8, plan.MaxFrameValues)
			defer hub.Close()
			switch i % 3 {
			case 1: // kill a rank mid-run
				victim := 1 + i%3
				hub.SetFault(func(from, to int, f *Frame) error {
					if from == victim && f.Step >= 2 {
						hub.Kill(victim)
						return ErrPeerDown
					}
					return nil
				})
			case 2: // cancel mid-run
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				_, err := RunLoopbackHub(ctx, cfg, plan, hub)
				if err == nil {
					// The run may legitimately finish before the deadline
					// on a fast machine; that is not a failure.
					return
				}
				return
			}
			res, err := RunLoopbackHub(context.Background(), cfg, plan, hub)
			if i%3 == 1 {
				if err == nil {
					t.Errorf("run %d: expected injected failure", i)
				}
				return
			}
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			if len(res.Fabs) != len(cfg.Layout.Boxes) {
				t.Errorf("run %d: gathered %d boxes, want %d", i, len(res.Fabs), len(cfg.Layout.Boxes))
			}
		}()
	}
	wg.Wait()
}
