package perfmodel

import (
	"math"

	"stencilsched/internal/machine"
)

// Spectral-solve cost model: the FFT fast path answers K Euler steps of
// the frozen-velocity exemplar in one O(N log N) pass — two 3D
// transforms plus one pointwise multiply per evolved component — so its
// per-step cost falls like 1/K while every stencil schedule's per-step
// cost is flat (series) or saturates (temporal blocking, once the tile
// working set spills). The crossover K where the spectral backend wins
// is the quantity this file models and `stencilbench -mode fft`
// measures.

// SpectralComps is the number of components a spectral solve actually
// transforms: density and energy evolve; the frozen velocities are
// untouched by construction.
const SpectralComps = 2

// spectralFlopsPerCycle is the effective scalar rate of the transform
// inner loops. Butterflies are dense multiply-add chains over
// sequential complex data — far friendlier to the pipeline than the
// exemplar's gather-heavy face averages (KernelFlopsPerCycle ~0.26-
// 0.75) — so the spectral model carries its own calibration.
const spectralFlopsPerCycle = 1.0

// SpectralWork is the modeled cost of one K-step spectral solve on an
// n^3 box, normalized per Euler step.
type SpectralWork struct {
	// FlopsPerStep is the per-Euler-step floating-point work: the whole
	// sweep's transforms and multiplies divided by K.
	FlopsPerStep float64
	// SweepFlops is the work of the whole solve, independent of K up to
	// the one-off symbol-power pass.
	SweepFlops float64
	// BytesPerStep is the per-step DRAM traffic under the streaming
	// assumption (each transform axis streams the complex grid once).
	BytesPerStep int64
	// SweepSeconds is the modeled wall time of the whole solve on the
	// given machine: max of the compute and traffic times, whichever
	// bound binds.
	SweepSeconds float64
	// StepSeconds is SweepSeconds / K — the number to compare against a
	// stencil schedule's per-step time.
	StepSeconds float64
}

// fftFlopsPerPoint is the classic 5 log2(n) real-operation count of a
// complex radix-2 FFT, per point per 1D transform. Bluestein extents
// cost a constant factor more (three power-of-two transforms of ~2n);
// the model folds that into the same expression by rounding the
// transform length up, which is exactly what the implementation does.
func fftFlopsPerPoint(n int) float64 {
	m := 1
	for m < n {
		m <<= 1
	}
	if m != n { // Bluestein: three length-2m transforms per line of n
		return 3 * 2 * 5 * math.Log2(float64(2*m)) * float64(2*m) / float64(n)
	}
	return 5 * math.Log2(float64(n))
}

// SpectralSolveWork models one K-step spectral solve of an n^3 periodic
// box on machine m with p threads: SpectralComps components, each
// forward+inverse 3D transformed (3 axes each way) with one pointwise
// symbol multiply, plus the symbol-power pass. Compute is bounded by
// the machine's peak across the p cores; traffic streams the complex
// grid once per axis pass.
func SpectralSolveWork(n, k int, m machine.Machine, p int) SpectralWork {
	if n <= 0 || k < 1 {
		panic("perfmodel: bad spectral work arguments")
	}
	n3 := float64(n) * float64(n) * float64(n)
	perAxis := fftFlopsPerPoint(n) * n3 // one axis pass over the grid
	transforms := float64(SpectralComps) * 2 * 3 * perAxis
	// Symbol power: log2(k) complex multiplies per mode, ~6 flops each;
	// pointwise apply: one complex multiply per mode per component.
	symbol := n3 * (6*math.Max(1, math.Log2(float64(k))) + float64(SpectralComps)*6)
	flops := transforms + symbol

	// Each axis pass streams the 16-byte complex grid in and out; the
	// component load/store and symbol grid add real-array passes.
	complexBytes := 16 * n3
	bytes := float64(SpectralComps)*2*3*2*complexBytes + (2*float64(SpectralComps)+1)*8*n3

	cores := p
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores() {
		cores = m.Cores()
	}
	computeRate := float64(cores) * m.GHz * 1e9 * spectralFlopsPerCycle
	flopsSec := flops / computeRate
	memSec := bytes / (bandwidthGBs(m, cores, false) * 1e9)
	sweep := math.Max(flopsSec, memSec)
	return SpectralWork{
		FlopsPerStep: flops / float64(k),
		SweepFlops:   flops,
		BytesPerStep: int64(bytes / float64(k)),
		SweepSeconds: sweep,
		StepSeconds:  sweep / float64(k),
	}
}

// SpectralCrossoverK returns the smallest K in ks at which the modeled
// spectral per-step time beats the best temporal schedule's modeled
// per-step time on the same box (found by BestTemporalConfig over the
// given tiles and temporal Ks), or 0 if the spectral backend never
// wins in the range. This is the model-side prediction of the
// crossover `stencilbench -mode fft` measures.
func SpectralCrossoverK(n int, m machine.Machine, p int, tiles, temporalKs, ks []int) int {
	_, _, tr := BestTemporalConfig(n, m, p, tiles, temporalKs)
	stencilStep := float64(tr.BytesPerStep) / (bandwidthGBs(m, p, false) * 1e9)
	for _, k := range ks {
		if SpectralSolveWork(n, k, m, p).StepSeconds < stencilStep {
			return k
		}
	}
	return 0
}
