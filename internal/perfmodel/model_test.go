package perfmodel

import (
	"math"
	"testing"

	"stencilsched/internal/machine"
	"stencilsched/internal/sched"
)

func mustVariant(t *testing.T, name string) sched.Variant {
	t.Helper()
	v, err := sched.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func modelTime(m machine.Machine, v sched.Variant, n, threads int) float64 {
	return Time(Config{
		Machine: m, Variant: v, BoxN: n,
		NumBoxes: PaperNumBoxes(n), Threads: threads,
	}).TotalSec
}

func TestTableIFormulas(t *testing.T) {
	// Spot-check Table I at N=128, T=16, C=5, P=24.
	n, tile, p := 128, 16, 24
	rows := TableIFor(n, tile, p)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Flux != 5*129*129*129 || rows[0].Vel != 129*129*129 {
		t.Errorf("series row = %+v", rows[0])
	}
	if rows[1].Flux != 2+2*128+2*128*128 || rows[1].Vel != 3*129*129*129 {
		t.Errorf("fused row = %+v", rows[1])
	}
	if rows[2].Flux != 2*3*5*128*128 || rows[2].Vel != 3*129*129*129 {
		t.Errorf("tiled row = %+v", rows[2])
	}
	if rows[3].Flux != int64(p)*5*(2+2*16+2*16*16) || rows[3].Vel != int64(p)*5*3*17*17*17 {
		t.Errorf("OT row = %+v", rows[3])
	}
}

func TestTableIOrdering(t *testing.T) {
	// At N=128 the flux temporary shrinks dramatically from series to
	// fused (the paper's core storage argument).
	series, _ := TableI(sched.Variant{Family: sched.Series}, 128, 1)
	fused, _ := TableI(sched.Variant{Family: sched.ShiftFuse}, 128, 1)
	if series.FluxElems/fused.FluxElems < 100 {
		t.Errorf("series/fused flux ratio = %d, want >= 100",
			series.FluxElems/fused.FluxElems)
	}
}

func TestTableIErrors(t *testing.T) {
	if _, err := TableI(sched.Variant{Family: sched.Series}, 0, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := TableI(sched.Variant{Family: sched.BlockedWavefront, TileSize: 7}, 16, 1); err == nil {
		t.Error("invalid variant accepted")
	}
}

func TestWorkingSetFitRegimes(t *testing.T) {
	amd := machine.MagnyCours()
	baseline := sched.Variant{Family: sched.Series}
	// N=16 fits the LLC even at full thread count; N=128 never fits.
	if tr := TrafficBytes(baseline, 16, amd, 24); !tr.Fits {
		t.Error("N=16 should fit at 24 threads on AMD")
	}
	if tr := TrafficBytes(baseline, 128, amd, 1); tr.Fits {
		t.Error("N=128 should spill even at 1 thread")
	}
	// N=32 transitions: fits at 1 thread, spills at 24 (the paper's "falls
	// smoothly in between").
	if tr := TrafficBytes(baseline, 32, amd, 1); !tr.Fits {
		t.Error("N=32 should fit at 1 thread")
	}
	if tr := TrafficBytes(baseline, 32, amd, 24); tr.Fits {
		t.Error("N=32 should spill at 24 threads")
	}
}

func TestTrafficOrderingAtN128(t *testing.T) {
	// Sec. VI-B: the fused schedule cuts bandwidth demand by roughly 2-3x
	// versus the baseline at N=128; overlapped tiles (T=16) are lower
	// still.
	amd := machine.MagnyCours()
	base := TrafficBytes(sched.Variant{Family: sched.Series}, 128, amd, 24).Bytes
	fused := TrafficBytes(sched.Variant{Family: sched.ShiftFuse}, 128, amd, 24).Bytes
	ot := TrafficBytes(sched.Variant{Family: sched.OverlappedTile, TileSize: 16, Intra: sched.FusedSched}, 128, amd, 24).Bytes
	if r := float64(base) / float64(fused); r < 2 || r > 5 {
		t.Errorf("baseline/fused traffic ratio = %.2f, want in [2,5]", r)
	}
	if !(ot < fused) {
		t.Errorf("OT traffic %d not below fused %d", ot, fused)
	}
}

func TestSmallTilesRecomputeMoreTraffic(t *testing.T) {
	amd := machine.MagnyCours()
	get := func(ts int) int64 {
		return TrafficBytes(sched.Variant{Family: sched.OverlappedTile, TileSize: ts, Intra: sched.FusedSched}, 128, amd, 24).Bytes
	}
	if !(get(4) > get(8) && get(8) > get(16)) {
		t.Errorf("OT traffic not decreasing in tile size: %d, %d, %d", get(4), get(8), get(16))
	}
}

func TestFlopsPerBoxRecompute(t *testing.T) {
	base := FlopsPerBox(sched.Variant{Family: sched.Series}, 64)
	fused := FlopsPerBox(sched.Variant{Family: sched.ShiftFuse}, 64)
	ot4 := FlopsPerBox(sched.Variant{Family: sched.OverlappedTile, TileSize: 4, Intra: sched.FusedSched}, 64)
	ot16 := FlopsPerBox(sched.Variant{Family: sched.OverlappedTile, TileSize: 16, Intra: sched.FusedSched}, 64)
	otBasic := FlopsPerBox(sched.Variant{Family: sched.OverlappedTile, TileSize: 16, Intra: sched.BasicSched}, 64)
	// The staging penalty makes the series schedule cost more effective
	// compute than the fused one despite the latter's extra velocity pass —
	// the paper's ~16% shift-and-fuse win at N=16 (Fig. 2 discussion).
	if !(base > fused) {
		t.Errorf("series effective flops %g not above fused %g", base, fused)
	}
	if !(ot4 > ot16 && ot16 > fused) {
		t.Errorf("recompute flops ordering broken: ot4=%g ot16=%g fused=%g", ot4, ot16, fused)
	}
	// Basic-Sched intra-tile pays both recompute and staging: slower than
	// fused intra-tile at the same tile size (Fig. 10's winner is fused OT).
	if !(otBasic > ot16) {
		t.Errorf("basic OT flops %g not above fused OT %g", otBasic, ot16)
	}
	// Overlap overhead is bounded: even T=4 recomputes less than 2.5x.
	if ot4 > 2.5*base {
		t.Errorf("ot4 flops = %g > 2.5x base %g", ot4, base)
	}
}

// --- Shape criteria for Figures 2-4 (see DESIGN.md section 4) ---

func TestFig2ShapeMagnyCours(t *testing.T) {
	amd := machine.MagnyCours()
	baseline := mustVariant(t, "Baseline: P>=Box")
	fused := mustVariant(t, "Shift-Fuse: P>=Box")
	ot := mustVariant(t, "Shift-Fuse OT-16: P>=Box")

	// (a) Baseline N=16 scales near-ideally to 24 threads.
	sp := modelTime(amd, baseline, 16, 1) / modelTime(amd, baseline, 16, 24)
	if sp < 0.7*24 {
		t.Errorf("baseline N=16 speedup at 24 threads = %.1f, want >= %.1f", sp, 0.7*24)
	}
	// Single-thread absolute time lands near the paper's ~16 s.
	if t1 := modelTime(amd, baseline, 16, 1); t1 < 8 || t1 > 32 {
		t.Errorf("baseline N=16 single-thread = %.1fs, want ~16s", t1)
	}

	// (b) Baseline N=128 stops scaling: 24 threads gain little over 8.
	if r := modelTime(amd, baseline, 128, 8) / modelTime(amd, baseline, 128, 24); r > 2.0 {
		t.Errorf("baseline N=128 kept scaling 8->24 (ratio %.2f)", r)
	}
	// and its 24-thread time sits well above the N=16 baseline.
	gap := modelTime(amd, baseline, 128, 24) / modelTime(amd, baseline, 16, 24)
	if gap < 1.5 {
		t.Errorf("baseline N=128 vs N=16 at 24 threads gap = %.2f, want >= 1.5", gap)
	}

	// (c) Shift-fuse N=128 scales well to 8 threads...
	if sp := modelTime(amd, fused, 128, 1) / modelTime(amd, fused, 128, 8); sp < 0.75*8 {
		t.Errorf("shift-fuse N=128 speedup at 8 = %.1f", sp)
	}

	// (d) The OT variant at N=128 lands within 1.5x of baseline N=16 at 24
	// threads (the paper's headline result).
	if r := modelTime(amd, ot, 128, 24) / modelTime(amd, baseline, 16, 24); r > 1.5 {
		t.Errorf("OT-16 N=128 vs baseline N=16 at 24 threads = %.2fx, want <= 1.5x", r)
	}
	// and clearly beats the N=128 baseline.
	if r := modelTime(amd, baseline, 128, 24) / modelTime(amd, ot, 128, 24); r < 1.5 {
		t.Errorf("OT-16 N=128 speedup over baseline N=128 = %.2fx, want >= 1.5x", r)
	}
}

func TestFig3ShapeIvyBridge(t *testing.T) {
	ivy := machine.IvyBridge20()
	baseline := mustVariant(t, "Baseline: P>=Box")
	ot := mustVariant(t, "Shift-Fuse OT-8: P<Box")
	// Single-thread baseline near the paper's ~4-5 s.
	if t1 := modelTime(ivy, baseline, 16, 1); t1 < 2.5 || t1 > 10 {
		t.Errorf("Ivy baseline single-thread = %.1fs, want ~4-5s", t1)
	}
	// Baseline N=128 at 20 threads roughly 2x slower than N=16 (Fig. 3
	// text: "still 2 times slower").
	gap := modelTime(ivy, baseline, 128, 20) / modelTime(ivy, baseline, 16, 20)
	if gap < 1.4 || gap > 12 {
		t.Errorf("Ivy N=128/N=16 baseline gap at 20 threads = %.2f", gap)
	}
	// OT-8 fixes it.
	if r := modelTime(ivy, ot, 128, 20) / modelTime(ivy, baseline, 16, 20); r > 1.6 {
		t.Errorf("Ivy OT-8 N=128 vs baseline N=16 = %.2fx", r)
	}
	// Hyper-threading does not help the bandwidth-bound baseline (Fig. 11
	// shows it getting slower), but does not hurt OT.
	if modelTime(ivy, baseline, 128, 40) < modelTime(ivy, baseline, 128, 20) {
		t.Error("HT improved the bandwidth-bound baseline")
	}
	if modelTime(ivy, ot, 128, 40) > 1.2*modelTime(ivy, ot, 128, 20) {
		t.Error("HT materially hurt OT")
	}
}

func TestFig4ShapeSandyBridge(t *testing.T) {
	sandy := machine.SandyBridge16()
	baseline := mustVariant(t, "Baseline: P>=Box")
	ot := mustVariant(t, "Shift-Fuse OT-16: P<Box")
	if r := modelTime(sandy, ot, 128, 16) / modelTime(sandy, baseline, 16, 16); r > 1.6 {
		t.Errorf("Sandy OT-16 N=128 vs baseline N=16 = %.2fx", r)
	}
	if r := modelTime(sandy, baseline, 128, 16) / modelTime(sandy, ot, 128, 16); r < 1.5 {
		t.Errorf("Sandy OT win over baseline at N=128 = %.2fx, want >= 1.5", r)
	}
}

func TestFig10WavefrontOffsetAboveOT(t *testing.T) {
	// Wavefront schedules scale but sit offset above the OT lines
	// (Sec. VI-B "Wavefront Tiling").
	amd := machine.MagnyCours()
	wf := mustVariant(t, "Blocked WF-CLO-16: P<Box")
	ot := mustVariant(t, "Shift-Fuse OT-8: P<Box")
	twf := modelTime(amd, wf, 128, 24)
	tot := modelTime(amd, ot, 128, 24)
	if !(twf > tot) {
		t.Errorf("wavefront (%.2fs) not above OT (%.2fs) at 24 threads", twf, tot)
	}
	// But wavefront still scales: 24 threads much faster than 1.
	if sp := modelTime(amd, wf, 128, 1) / twf; sp < 4 {
		t.Errorf("wavefront speedup at 24 = %.1f, want >= 4", sp)
	}
}

func TestFig9GranularityCrossover(t *testing.T) {
	// P>=Box wins at N=16; the two granularities converge by N=128.
	for _, m := range []machine.Machine{machine.MagnyCours(), machine.IvyBridge20()} {
		p := m.Cores()
		_, over16 := Best(m, sched.OverBoxes, 16, PaperNumBoxes(16), p)
		_, within16 := Best(m, sched.WithinBox, 16, PaperNumBoxes(16), p)
		if !(over16 < within16) {
			t.Errorf("%s: P>=Box (%.2f) not faster than P<Box (%.2f) at N=16",
				m.Name, over16, within16)
		}
		_, over128 := Best(m, sched.OverBoxes, 128, PaperNumBoxes(128), p)
		_, within128 := Best(m, sched.WithinBox, 128, PaperNumBoxes(128), p)
		ratio := within128 / over128
		if ratio > 1.4 || ratio < 0.6 {
			t.Errorf("%s: granularities did not converge at N=128 (ratio %.2f)", m.Name, ratio)
		}
	}
}

func TestBestTileSizesArePaperLike(t *testing.T) {
	// "In general tile sizes of 8 and 16 were the most efficient": the best
	// P<Box variant at N=128 should be an OT with tile 8 or 16 on every
	// machine.
	for _, m := range []machine.Machine{machine.MagnyCours(), machine.IvyBridge20(), machine.SandyBridge16()} {
		v, _ := Best(m, sched.WithinBox, 128, PaperNumBoxes(128), m.Cores())
		if v.Family != sched.OverlappedTile {
			t.Errorf("%s: best P<Box family = %s", m.Name, v.Family)
		}
		if v.TileSize != 8 && v.TileSize != 16 {
			t.Errorf("%s: best tile size = %d, want 8 or 16", m.Name, v.TileSize)
		}
	}
}

func TestIntermediateBoxSizesFallBetween(t *testing.T) {
	// "performance results for box sizes of N = 32 and 64 fall smoothly in
	// between those of N = 16 and 128" for the baseline at max threads.
	amd := machine.MagnyCours()
	baseline := mustVariant(t, "Baseline: P>=Box")
	t16 := modelTime(amd, baseline, 16, 24)
	t32 := modelTime(amd, baseline, 32, 24)
	t64 := modelTime(amd, baseline, 64, 24)
	t128 := modelTime(amd, baseline, 128, 24)
	if !(t16 <= t32 && t32 <= t64 && t64 <= t128) {
		t.Errorf("not monotone: %.2f %.2f %.2f %.2f", t16, t32, t64, t128)
	}
}

func TestRegionOverheadPenalizesFineGrainSmallBoxes(t *testing.T) {
	// The Fig. 9 explanation: P<Box on N=16 boxes pays hundreds of
	// thousands of parallel-region costs.
	amd := machine.MagnyCours()
	cfg := Config{
		Machine: amd,
		Variant: sched.Variant{Family: sched.Series, Par: sched.WithinBox},
		BoxN:    16, NumBoxes: PaperNumBoxes(16), Threads: 24,
	}
	b := Time(cfg)
	if b.RegionSec < 0.5 {
		t.Errorf("region overhead = %.3fs, expected substantial (>0.5s)", b.RegionSec)
	}
	// The same schedule on 24 big boxes pays almost nothing.
	cfg.BoxN, cfg.NumBoxes = 128, PaperNumBoxes(128)
	if b := Time(cfg); b.RegionSec > 0.2 {
		t.Errorf("region overhead at N=128 = %.3fs, expected negligible", b.RegionSec)
	}
}

func TestNUMAAwareAblationRaisesPlateau(t *testing.T) {
	// With NUMA-correct placement both sockets' bandwidth is available, so
	// the bandwidth-bound baseline plateau drops.
	amd := machine.MagnyCours()
	v := sched.Variant{Family: sched.Series}
	naive := Time(Config{Machine: amd, Variant: v, BoxN: 128, NumBoxes: 24, Threads: 24})
	aware := Time(Config{Machine: amd, Variant: v, BoxN: 128, NumBoxes: 24, Threads: 24, NUMAAware: true})
	if !(aware.TotalSec < naive.TotalSec) {
		t.Errorf("NUMA-aware (%.2fs) not faster than naive (%.2fs)", aware.TotalSec, naive.TotalSec)
	}
	if aware.BWGBs <= naive.BWGBs {
		t.Errorf("NUMA-aware BW %.1f <= naive %.1f", aware.BWGBs, naive.BWGBs)
	}
}

func TestCurveLengthAndPositivity(t *testing.T) {
	amd := machine.MagnyCours()
	ts := amd.ThreadSweep()
	c := Curve(amd, sched.Variant{Family: sched.Series}, 32, PaperNumBoxes(32), ts)
	if len(c) != len(ts) {
		t.Fatalf("curve length %d vs %d", len(c), len(ts))
	}
	for i, v := range c {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("curve[%d] = %v", i, v)
		}
	}
}

func TestRooflinePlacement(t *testing.T) {
	amd := machine.MagnyCours()
	base := RooflineFor(sched.Variant{Family: sched.Series}, 128, amd, 24)
	ot := RooflineFor(sched.Variant{Family: sched.OverlappedTile, TileSize: 16, Intra: sched.FusedSched}, 128, amd, 24)
	// The whole study in one contrast: at full thread count the spilled
	// baseline sits below the balance point (memory-bound), the overlapped
	// tiles above it (compute-bound).
	if !base.MemoryBound {
		t.Errorf("baseline not memory-bound: %+v", base)
	}
	if ot.MemoryBound {
		t.Errorf("OT memory-bound: %+v", ot)
	}
	if !(ot.IntensityFlopPerByte > 2*base.IntensityFlopPerByte) {
		t.Errorf("OT intensity %v not well above baseline %v",
			ot.IntensityFlopPerByte, base.IntensityFlopPerByte)
	}
	// At one thread even the baseline is compute-bound (the figures' clean
	// start of every curve).
	if b1 := RooflineFor(sched.Variant{Family: sched.Series}, 128, amd, 1); b1.MemoryBound {
		t.Errorf("baseline memory-bound at 1 thread: %+v", b1)
	}
}

func TestTimePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	Time(Config{Machine: machine.MagnyCours(), Variant: sched.Variant{Family: sched.Series}, BoxN: 0, NumBoxes: 1, Threads: 1})
}
