package perfmodel

import (
	"testing"

	"stencilsched/internal/machine"
)

func TestTemporalWorkingSetGrowsWithK(t *testing.T) {
	prev := int64(0)
	for k := 1; k <= 4; k++ {
		ws := TemporalWorkingSetBytes(48, 16, k)
		if ws <= prev {
			t.Errorf("K=%d working set %d not above K=%d's %d", k, ws, k-1, prev)
		}
		prev = ws
	}
	// Whole-box and clamped tile agree.
	if TemporalWorkingSetBytes(24, 0, 2) != TemporalWorkingSetBytes(24, 24, 2) {
		t.Error("tile<=0 does not clamp to the whole box")
	}
	if TemporalWorkingSetBytes(24, 99, 2) != TemporalWorkingSetBytes(24, 24, 2) {
		t.Error("oversized tile does not clamp to the box")
	}
}

func TestTemporalRecomputeFactor(t *testing.T) {
	if rf := TemporalTrafficBytes(48, 16, 1, machine.IvyBridgeDesktop(), 1).RecomputeFactor; rf != 1 {
		t.Errorf("K=1 recompute factor = %v, want exactly 1", rf)
	}
	// Deeper K recomputes more; bigger tiles amortize it.
	desk := machine.IvyBridgeDesktop()
	r2 := TemporalTrafficBytes(48, 16, 2, desk, 1).RecomputeFactor
	r4 := TemporalTrafficBytes(48, 16, 4, desk, 1).RecomputeFactor
	if !(1 < r2 && r2 < r4) {
		t.Errorf("recompute factors not increasing with K: r2=%v r4=%v", r2, r4)
	}
	r2big := TemporalTrafficBytes(48, 48, 2, desk, 1).RecomputeFactor
	if r2big >= r2 {
		t.Errorf("whole-box recompute %v not below tile-16's %v", r2big, r2)
	}
}

// TestTemporalPerStepTrafficDropsWithKWhenFitting pins the core trade
// the model exists to expose: at a tile whose K-step working set fits
// the cache share, the K-deep sweep streams the state once for K Euler
// steps, so modeled per-step DRAM bytes fall as K grows even though the
// whole-sweep bytes rise.
func TestTemporalPerStepTrafficDropsWithKWhenFitting(t *testing.T) {
	desk := machine.IvyBridgeDesktop()
	share := cacheShareBytes(desk, 1)
	prev := TemporalTraffic{}
	for k := 1; k <= 4; k *= 2 {
		tr := TemporalTrafficBytes(96, 16, k, desk, 1)
		if ws := TemporalWorkingSetBytes(96, 16, k); ws > share {
			t.Fatalf("K=%d tile-16 working set %d spills the %d share; pick a smaller tile", k, ws, share)
		}
		if !tr.Fits {
			t.Fatalf("K=%d: Fits=false for a fitting tile", k)
		}
		if k > 1 {
			if tr.BytesPerStep >= prev.BytesPerStep {
				t.Errorf("K=%d per-step bytes %d not below K=%d's %d",
					k, tr.BytesPerStep, k/2, prev.BytesPerStep)
			}
			if tr.SweepBytes <= prev.SweepBytes {
				t.Errorf("K=%d sweep bytes %d not above K=%d's %d",
					k, tr.SweepBytes, k/2, prev.SweepBytes)
			}
		}
		prev = tr
	}
}

// TestTemporalSpillKillsTheWin pins the other half of the trade: when
// the per-tile working set outgrows the share (whole-box tiling at a
// large N), deeper K stops paying — per-step traffic at K=4 is no
// better than the fitting-tile configuration, and the spill is flagged.
func TestTemporalSpillKillsTheWin(t *testing.T) {
	desk := machine.IvyBridgeDesktop()
	spilled := TemporalTrafficBytes(96, 0, 4, desk, 1)
	if spilled.Fits {
		t.Fatal("whole-box 96^3 K=4 working set reported as fitting")
	}
	fitting := TemporalTrafficBytes(96, 16, 4, desk, 1)
	if spilled.BytesPerStep <= fitting.BytesPerStep {
		t.Errorf("spilled whole-box per-step bytes %d not above fitting tile-16's %d",
			spilled.BytesPerStep, fitting.BytesPerStep)
	}
}

func TestBestTemporalConfigPrefersDeepKOnFittingTiles(t *testing.T) {
	desk := machine.IvyBridgeDesktop()
	tiles := []int{0, 16, 32}
	ks := []int{1, 2, 4}
	tile, k, tr := BestTemporalConfig(96, desk, 1, tiles, ks)
	if k <= 1 {
		t.Errorf("best K = %d; expected the model to prefer K>1 at 96^3", k)
	}
	if !tr.Fits {
		t.Errorf("best config (tile=%d K=%d) does not fit the cache share", tile, k)
	}
	base := TemporalTrafficBytes(96, 0, 1, desk, 1)
	if tr.BytesPerStep >= base.BytesPerStep {
		t.Errorf("best per-step bytes %d not below the K=1 whole-box baseline %d",
			tr.BytesPerStep, base.BytesPerStep)
	}
}

func TestTemporalTrafficBytesPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 1}, {16, 0}, {-3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d k=%d did not panic", c.n, c.k)
				}
			}()
			TemporalTrafficBytes(c.n, 8, c.k, machine.IvyBridgeDesktop(), 1)
		}()
	}
}
