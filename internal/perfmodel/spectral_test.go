package perfmodel

import (
	"testing"

	"stencilsched/internal/machine"
)

func TestSpectralWorkShape(t *testing.T) {
	m := machine.All()[0]
	// Per-step cost must fall like 1/K: the sweep cost is K-independent
	// up to the cheap symbol-power pass.
	w1 := SpectralSolveWork(64, 1, m, 8)
	w16 := SpectralSolveWork(64, 16, m, 8)
	if w16.StepSeconds >= w1.StepSeconds {
		t.Errorf("K=16 per-step %.3g not below K=1 per-step %.3g", w16.StepSeconds, w1.StepSeconds)
	}
	if w16.StepSeconds > w1.StepSeconds/8 {
		t.Errorf("K=16 per-step %.3g should be ~16x below K=1's %.3g", w16.StepSeconds, w1.StepSeconds)
	}
	// Sweep cost grows with the box.
	if big := SpectralSolveWork(96, 4, m, 8); big.SweepSeconds <= SpectralSolveWork(64, 4, m, 8).SweepSeconds {
		t.Errorf("96^3 sweep not more expensive than 64^3")
	}
	// Bluestein extents cost more per point than the next power of two
	// costs in total is not guaranteed, but they must exceed their own
	// power-of-two floor per point.
	if fftFlopsPerPoint(96) <= fftFlopsPerPoint(64) {
		t.Errorf("Bluestein n=96 modeled cheaper per point than radix-2 n=64")
	}
}

func TestSpectralCrossoverExists(t *testing.T) {
	m := machine.All()[0]
	ks := []int{1, 2, 4, 8, 16}
	k := SpectralCrossoverK(64, m, 8, []int{0, 16, 32}, []int{1, 2, 4}, ks)
	if k == 0 {
		t.Fatalf("no modeled crossover K in %v on 64^3 — the spectral fast path should win at deep K", ks)
	}
	// The crossover must be genuine: one step of FFT work costs more
	// than one stencil step, so K=1 should not win.
	if k == 1 {
		t.Errorf("modeled crossover at K=1: spectral sweep should not beat a single stencil step")
	}
}
