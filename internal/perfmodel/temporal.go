package perfmodel

import (
	"math"

	"stencilsched/internal/kernel"
	"stencilsched/internal/machine"
)

// Temporal-blocking traffic model: one sweep of the internal/temporal
// engine advances K Euler steps per tile, reading each tile's K-deep
// ghosted state once and writing the K-stepped interior once. When the
// per-tile working set fits the cache share, the sub-step temporaries
// and the K-1 intermediate states never touch DRAM, so the per-step
// traffic is roughly the single-step compulsory traffic divided by K
// (plus the deeper halo re-reads). When the working set spills, every
// sub-step streams like a separate series sweep and the temporal win
// evaporates — the (tile, K) trade the autotuner searches.

// TemporalTraffic is the modeled DRAM movement of temporal blocking at
// one (tile, K) point, normalized per Euler step.
type TemporalTraffic struct {
	// BytesPerStep is the per-Euler-step DRAM traffic of one box
	// (sweep traffic / K).
	BytesPerStep int64
	// SweepBytes is the traffic of the whole K-step sweep.
	SweepBytes int64
	// Fits reports whether one tile's K-step working set fit the cache
	// share.
	Fits bool
	// RecomputeFactor is the cell-update multiplier of the shrinking
	// sub-step regions relative to K plain steps (1 at K=1, growing
	// with K and shrinking with tile size).
	RecomputeFactor float64
}

// TemporalWorkingSetBytes returns the per-tile arena footprint of a
// K-step temporal sweep with tile edge t (t <= 0 or t > n means the
// whole n^3 box is one tile): the K-deep ghosted state, the (K-1)-deep
// accumulator, and the widest sub-step's flux/velocity temporaries.
func TemporalWorkingSetBytes(n, tile, k int) int64 {
	t := int64(tileEdge(n, tile))
	ng := int64(kernel.NGhost)
	c := int64(kernel.NComp)
	cube := func(e int64) int64 { return e * e * e }
	state := c * cube(t+2*int64(k)*ng)
	acc := c * cube(t+2*int64(k-1)*ng)
	// The widest sub-step runs the series schedule over the acc region:
	// C flux components plus one velocity field on its faces.
	faces := (c + 1) * cube(t+2*int64(k-1)*ng+1)
	return (state + acc + faces) * 8
}

// tileEdge clamps the configured tile edge to the box.
func tileEdge(n, tile int) int {
	if tile <= 0 || tile > n {
		return n
	}
	return tile
}

// temporalRecompute returns the cell-update multiplier of the shrinking
// wavefront: sub-step j of a K-step sweep computes each tile grown by
// (K-1-j)*NGhost layers, versus K updates of the bare tile.
func temporalRecompute(n, tile, k int) float64 {
	t := float64(tileEdge(n, tile))
	ng := float64(kernel.NGhost)
	var cells float64
	for j := 0; j < k; j++ {
		e := t + 2*float64(k-1-j)*ng
		cells += e * e * e
	}
	return cells / (float64(k) * t * t * t)
}

// TemporalTrafficBytes models the DRAM traffic of temporal blocking on
// an n^3 box at tile edge `tile` and depth K on machine m with p
// threads active — the (tile, K) counterpart of TrafficBytes. The K=1
// whole-box point reduces to the compulsory single-step traffic, so the
// model is comparable across K.
func TemporalTrafficBytes(n, tile, k int, m machine.Machine, p int) TemporalTraffic {
	if n <= 0 || k < 1 {
		panic("perfmodel: bad temporal traffic arguments")
	}
	t := tileEdge(n, tile)
	c := float64(kernel.NComp)
	ng := float64(kernel.NGhost)
	n3 := float64(n) * float64(n) * float64(n)
	share := cacheShareBytes(m, p)
	ws := TemporalWorkingSetBytes(n, tile, k)
	fits := ws <= share

	// Compulsory sweep traffic: each tile streams its K-deep ghosted
	// state in once (halo factor over the dimensions the tiling cuts,
	// partly L3-shared like the overlapped tiles) and the K-stepped
	// interior back out (read-modify-write of phi1).
	halo := 1.0
	if t < n {
		tf := float64(t)
		f := (tf + 2*float64(k)*ng) / tf
		halo = f * f * f
	} else {
		nf := float64(n)
		gf := nf + 2*float64(k)*ng
		halo = gf * gf * gf / (nf * nf * nf)
	}
	haloEff := 1 + (halo-1)*(1-HaloL3SharingFactor)
	sweep := c*n3*8*haloEff + 2*c*n3*8

	// Spilled tiles stream their sub-step temporaries like K separate
	// series sweeps over the recompute-inflated regions; blend between
	// the regimes as the working set outgrows the share (same machinery
	// as TrafficBytes).
	rf := temporalRecompute(n, tile, k)
	spilled := float64(k) * float64(compulsoryBytes(n)) * rf * StencilReReadFactor
	b := sweep
	ratio := float64(ws) / float64(share)
	if ratio > 1 {
		decades := math.Log2(ratio)
		frac := decades / SpillBlendDecades
		if frac > 1 {
			frac = 1
		}
		b = sweep + (spilled-sweep)*frac
		b *= 1 + TLBPressurePerDecade*decades
	}
	return TemporalTraffic{
		BytesPerStep:    int64(b / float64(k)),
		SweepBytes:      int64(b),
		Fits:            fits,
		RecomputeFactor: rf,
	}
}

// BestTemporalConfig searches a (tile, K) grid for the lowest modeled
// per-step traffic and returns the winning point — the model-driven
// counterpart of the measured joint search AutotuneCompiled runs. Zero
// tiles mean the whole box.
func BestTemporalConfig(n int, m machine.Machine, p int, tiles, ks []int) (tile, k int, tr TemporalTraffic) {
	first := true
	for _, t := range tiles {
		for _, kk := range ks {
			cand := TemporalTrafficBytes(n, t, kk, m, p)
			if first || cand.BytesPerStep < tr.BytesPerStep {
				tile, k, tr = t, kk, cand
				first = false
			}
		}
	}
	return tile, k, tr
}
