package perfmodel

import (
	"fmt"
	"math"

	"stencilsched/internal/ivect"
	"stencilsched/internal/machine"
	"stencilsched/internal/sched"
	"stencilsched/internal/wavefront"
)

// Parallel-region bookkeeping constants. OpenMP fork/join and barrier costs
// are a few microseconds and grow with the thread count; they are what
// makes fine-grained P<Box parallelization uncompetitive on small boxes
// (the Fig. 9 gap at N = 16).
const (
	// RegionBaseSec is the fixed cost of opening/closing one parallel
	// region (or one wavefront barrier).
	RegionBaseSec = 1.0e-6
	// RegionPerThreadSec is the additional cost per participating thread.
	RegionPerThreadSec = 2.0e-7
)

// Config is one modeled experiment point: a variant applied to NumBoxes
// boxes of BoxN^3 cells on Machine with Threads threads.
type Config struct {
	Machine  machine.Machine
	Variant  sched.Variant
	BoxN     int
	NumBoxes int
	Threads  int
	// NUMAAware, when true, models first-touch-correct data placement so
	// that every socket's memory controllers contribute bandwidth. The
	// paper's plain OpenMP runs (and this model's default) leave the data
	// on the master thread's socket, capping the node at one socket's
	// bandwidth — the ablation that explains the plateau heights.
	NUMAAware bool
}

// Breakdown is a modeled execution time and its components.
type Breakdown struct {
	TotalSec   float64
	ComputeSec float64
	MemorySec  float64
	RegionSec  float64
	// Speedup is the effective parallel speedup of the compute component
	// (granularity-limited, wavefront-limited and core-capped).
	Speedup float64
	// BWGBs is the modeled memory bandwidth available at this thread count.
	BWGBs float64
	// Fits reports the cache-fit regime of the traffic model.
	Fits bool
}

// Time models the execution time of one application of the exemplar to all
// boxes of the configuration. It is the reproduction's stand-in for the
// paper's measured Figures 2-4 and 9-12; see DESIGN.md for the
// substitution argument and EXPERIMENTS.md for shape-vs-paper records.
func Time(cfg Config) Breakdown {
	if err := cfg.Variant.Validate(); err != nil {
		panic(fmt.Sprintf("perfmodel: %v", err))
	}
	if cfg.BoxN <= 0 || cfg.NumBoxes <= 0 {
		panic(fmt.Sprintf("perfmodel: bad problem %d boxes of %d", cfg.NumBoxes, cfg.BoxN))
	}
	m := cfg.Machine
	p := cfg.Threads
	if p < 1 {
		p = 1
	}

	flops := FlopsPerBox(cfg.Variant, cfg.BoxN) * float64(cfg.NumBoxes)
	tr := TrafficBytes(cfg.Variant, cfg.BoxN, m, p)
	bytes := float64(tr.Bytes) * float64(cfg.NumBoxes)

	speedup := computeSpeedup(cfg.Variant, cfg.BoxN, cfg.NumBoxes, p, m)
	coreRate := m.GHz * 1e9 * m.KernelFlopsPerCycle
	compute := flops / (speedup * coreRate)

	bw := bandwidthGBs(m, p, cfg.NUMAAware)
	memory := bytes / (bw * 1e9)
	if p > m.Cores() && !tr.Fits {
		// Hyper-threading pressure on an already bandwidth-bound schedule
		// (Fig. 11's baseline degrades beyond 20 threads).
		memory *= HTMemPenalty
	}

	regions := regionCount(cfg.Variant, cfg.BoxN, cfg.NumBoxes)
	regionSec := float64(regions) * (RegionBaseSec + RegionPerThreadSec*float64(p))

	b := Breakdown{
		ComputeSec: compute,
		MemorySec:  memory,
		RegionSec:  regionSec,
		Speedup:    speedup,
		BWGBs:      bw,
		Fits:       tr.Fits,
	}
	b.TotalSec = math.Max(compute, memory) + regionSec
	return b
}

// bandwidthGBs models the memory bandwidth p compact threads can draw.
// Without NUMA-aware placement all pages sit on the master thread's socket,
// so the node never exceeds one socket's sustained bandwidth regardless of
// thread count.
func bandwidthGBs(m machine.Machine, p int, numaAware bool) float64 {
	sustainedSocket := m.BWPerSocketGBs * m.SustainedBWFraction
	cap := sustainedSocket
	if numaAware {
		cap = sustainedSocket * float64(m.SocketsUsed(p))
	}
	return math.Min(float64(p)*m.SingleThreadBWGBs, cap)
}

// computeSpeedup models the effective parallel speedup of the compute
// component for the variant's parallelization granularity:
//
//   - P>=Box: whole boxes per thread, so speedup is limited by box count
//     and box-per-thread load balance;
//   - P<Box series: z-slab parallelism within each box;
//   - P<Box shift-fuse: per-iteration wavefront over cells;
//   - blocked wavefront: tile wavefront (pipeline fill/drain penalty);
//   - overlapped tiles: independent tiles (tile-count limited).
//
// Hyper-threads do not add compute throughput: speedup is capped at the
// physical core count.
func computeSpeedup(v sched.Variant, n, numBoxes, threads int, m machine.Machine) float64 {
	var s float64
	if v.Par == sched.OverBoxes {
		useful := min(threads, numBoxes)
		s = float64(numBoxes) / math.Ceil(float64(numBoxes)/float64(useful))
	} else {
		switch v.Family {
		case sched.Series:
			useful := min(threads, n)
			s = float64(n) / math.Ceil(float64(n)/float64(useful))
		case sched.ShiftFuse:
			st := wavefront.Profile(ivect.Uniform(n), threads)
			s = float64(st.Items) / float64(st.Steps)
		case sched.BlockedWavefront:
			st := wavefront.Profile(tileGrid(n, v), threads)
			s = float64(st.Items) / float64(st.Steps)
		case sched.OverlappedTile:
			tiles := tileGrid(n, v).Prod()
			useful := min(threads, tiles)
			s = float64(tiles) / math.Ceil(float64(tiles)/float64(useful))
		}
	}
	if cores := float64(m.Cores()); s > cores {
		s = cores
	}
	if s < 1 {
		s = 1
	}
	return s
}

// regionCount models how many parallel regions (fork/join or wavefront
// barriers) one application of the variant opens across all boxes.
func regionCount(v sched.Variant, n, numBoxes int) int64 {
	comps := int64(5)
	if v.Comp == sched.CLI {
		comps = 1
	}
	if v.Par == sched.OverBoxes {
		// One region over boxes (plus the fused families' three velocity
		// passes folded into it).
		return 1
	}
	perBox := int64(0)
	switch v.Family {
	case sched.Series:
		// Per direction: pass 1, velocity copy, pass 2a, pass 2b.
		perBox = 3 * (comps + 1 + comps + comps)
	case sched.ShiftFuse:
		// Three velocity passes plus one barrier per cell anti-diagonal per
		// component sweep.
		perBox = 3 + int64(3*n-2)*comps
	case sched.BlockedWavefront:
		g := tileGrid(n, v)
		perBox = 3 + int64(g.Sum()-2)*comps
	case sched.OverlappedTile:
		// One dynamic region over tiles.
		perBox = 1
	}
	return perBox * int64(numBoxes)
}

// Curve returns modeled times for a sweep of thread counts.
func Curve(m machine.Machine, v sched.Variant, boxN, numBoxes int, threads []int) []float64 {
	out := make([]float64, len(threads))
	for i, p := range threads {
		out[i] = Time(Config{Machine: m, Variant: v, BoxN: boxN, NumBoxes: numBoxes, Threads: p}).TotalSec
	}
	return out
}

// tileGrid returns the tile-grid dimensions of a tiled variant on an N^3
// box.
func tileGrid(n int, v sched.Variant) ivect.IntVect {
	sh := v.TileShape()
	return ivect.New((n+sh[0]-1)/sh[0], (n+sh[1]-1)/sh[1], (n+sh[2]-1)/sh[2])
}

// PaperCells is the total cell count of the Section III-C evaluation
// problem; the box count for a given box size keeps it constant.
const PaperCells = 50331648

// PaperNumBoxes returns the box count that tiles the paper's evaluation
// domain with N^3 boxes (24 boxes at N=128 ... 12,288 at N=16).
func PaperNumBoxes(n int) int { return PaperCells / (n * n * n) }

// Roofline summarizes a variant's position against a machine's roofline:
// its arithmetic intensity (effective flops per DRAM byte), the machine's
// balance point, and whether the schedule is memory-bound at the given
// thread count.
type Roofline struct {
	IntensityFlopPerByte float64
	// BalancePoint is the machine's flops-per-byte at which compute and
	// sustained single-socket bandwidth meet for this thread count.
	BalancePoint float64
	MemoryBound  bool
}

// RooflineFor computes the roofline placement of variant v on an N^3 box.
func RooflineFor(v sched.Variant, n int, m machine.Machine, threads int) Roofline {
	flops := FlopsPerBox(v, n)
	tr := TrafficBytes(v, n, m, threads)
	r := Roofline{IntensityFlopPerByte: flops / float64(tr.Bytes)}
	cores := float64(min(threads, m.Cores()))
	computeRate := cores * m.GHz * 1e9 * m.KernelFlopsPerCycle
	bw := bandwidthGBs(m, threads, false) * 1e9
	r.BalancePoint = computeRate / bw
	r.MemoryBound = r.IntensityFlopPerByte < r.BalancePoint
	return r
}

// Best returns the fastest studied variant of the given granularity at the
// given thread count, with its modeled time — the selection behind Fig. 9.
func Best(m machine.Machine, par sched.Granularity, boxN, numBoxes, threads int) (sched.Variant, float64) {
	bestT := math.Inf(1)
	var bestV sched.Variant
	for _, v := range sched.Studied() {
		if v.Par != par {
			continue
		}
		if v.Tiled() && v.MaxTileEdge() > boxN {
			// The paper only used tile sizes strictly within the box.
			continue
		}
		t := Time(Config{Machine: m, Variant: v, BoxN: boxN, NumBoxes: numBoxes, Threads: threads}).TotalSec
		if t < bestT {
			bestT, bestV = t, v
		}
	}
	return bestV, bestT
}
