package perfmodel

import (
	"math"

	"stencilsched/internal/box"
	"stencilsched/internal/ivect"
	"stencilsched/internal/kernel"
	"stencilsched/internal/machine"
	"stencilsched/internal/sched"
	"stencilsched/internal/tiling"
)

// Model constants. Each is a documented engineering approximation; the
// cache-simulator experiments (cmd/cachebw) validate the resulting traffic
// ratios between schedules against the paper's Section VI-B bandwidth
// measurements.
const (
	// StencilReReadFactor inflates main-array reads of the spilled
	// (out-of-cache) schedules: the y/z stencil neighbors and the
	// re-traversal of just-written temporaries are not perfectly absorbed
	// once the working set exceeds the cache share.
	StencilReReadFactor = 1.4
	// HaloL3SharingFactor is the fraction of an overlapped tile's halo
	// re-reads served by the socket-shared L3 (a neighbor tile recently
	// streamed the same cells) rather than DRAM.
	HaloL3SharingFactor = 0.5
	// CLITrafficPenalty and CLIComputePenalty charge the component-
	// loop-inside variants for striding across the component dimension
	// (the components of one cell are sc = N_g^3 elements apart, wasting
	// cache-line locality), per the paper's observation that untiled CLI
	// was uniformly slower.
	CLITrafficPenalty = 1.2
	CLIComputePenalty = 1.1
	// HTMemPenalty is the extra memory-system pressure of running two
	// hyper-threads per core for bandwidth-bound schedules (the paper's
	// Fig. 11 baseline degrades beyond 20 threads while OT does not).
	HTMemPenalty = 1.15
	// SpillBlendDecades controls how gradually traffic moves from the
	// compulsory regime to the full-spill regime as the working set grows
	// past the cache share: the blend completes when the working set is
	// 2^SpillBlendDecades times the share. This is what makes N = 32 and
	// 64 "fall smoothly in between" N = 16 and 128 (Section VI).
	SpillBlendDecades = 2.0
	// TLBPressurePerDecade adds a small traffic penalty per doubling of
	// working-set-to-cache ratio, modeling TLB and page-locality decay for
	// very large footprints.
	TLBPressurePerDecade = 0.02
	// StagingComputePenalty charges the series-of-loops schedule (and the
	// series intra-tile schedule of Basic-Sched overlapped tiles) for
	// staging every value through memory temporaries: even when the
	// temporaries stay cached, the extra loads, stores and loop passes cost
	// cycles that the fused schedules avoid. Calibrated to the paper's
	// observation that shifting and fusing alone buys ~16% at N = 16 on 24
	// threads (Fig. 2 discussion).
	StagingComputePenalty = 1.25
)

// WorkingSetBytes returns the bytes one execution context (thread for
// P<Box tiles, box for P>=Box) repeatedly touches while running variant v
// on an N^3 box — the quantity compared against the cache share to decide
// whether temporaries stream from DRAM.
func WorkingSetBytes(v sched.Variant, n int) int64 {
	c := int64(kernel.NComp)
	n64 := int64(n)
	cell := n64 * n64 * n64 * 8
	gcell := (n64 + 2*kernel.NGhost) * (n64 + 2*kernel.NGhost) * (n64 + 2*kernel.NGhost) * 8
	face := (n64 + 1) * (n64 + 1) * (n64 + 1) * 8
	switch v.Family {
	case sched.Series:
		// phi0 (ghosted) + flux + velocity + phi1.
		return c*gcell + c*face + face + c*cell
	case sched.ShiftFuse, sched.BlockedWavefront:
		// phi0 + 3 velocity face fields + phi1; carried flux caches are
		// negligible.
		return c*gcell + 3*face + c*cell
	case sched.OverlappedTile:
		// Per-tile working set: the ghosted tile region of phi0, the tile's
		// velocity fields, the tile flux temporaries and the tile's phi1.
		sh := v.TileShape()
		var gt, tface, tcell int64 = 1, 1, 1
		for _, t := range sh {
			gt *= int64(t) + 2*kernel.NGhost
			tface *= int64(t) + 1
			tcell *= int64(t)
		}
		ws := c*gt*8 + 3*tface*8 + c*tcell*8
		if v.Intra == sched.BasicSched {
			ws += c * tface * 8
		}
		return ws
	default:
		panic("perfmodel: unknown family")
	}
}

// Traffic describes modeled DRAM movement for one application of the
// exemplar to one box.
type Traffic struct {
	Bytes int64
	// Fits reports whether the schedule's working set fit in its cache
	// share (the compulsory-traffic regime).
	Fits bool
}

// cacheShareBytes returns the last-level cache available to one execution
// context when p threads run compactly on machine m, plus its private L2.
func cacheShareBytes(m machine.Machine, p int) int64 {
	if p < 1 {
		p = 1
	}
	perSocket := p
	if s := m.SocketsUsed(p); s > 1 {
		perSocket = (p + s - 1) / s
	}
	if perSocket > m.CoresPerSocket {
		perSocket = m.CoresPerSocket
	}
	return m.L3.SizeBytes/int64(perSocket) + m.L2.SizeBytes
}

// compulsoryBytes is the unavoidable traffic of one box application: read
// the ghosted input once, write-allocate the output.
func compulsoryBytes(n int) int64 {
	c := int64(kernel.NComp)
	n64 := int64(n)
	g := n64 + 2*kernel.NGhost
	return c*g*g*g*8 + 2*c*n64*n64*n64*8
}

// TrafficBytes models the DRAM traffic of one application of variant v to
// an N^3 box on machine m with p threads active. The coefficients follow
// the pass structure of each schedule (see the per-family comments); the
// cache simulator in internal/cachesim validates the resulting ratios.
func TrafficBytes(v sched.Variant, n int, m machine.Machine, p int) Traffic {
	c := int64(kernel.NComp)
	n64 := int64(n)
	cell := n64 * n64 * n64 * 8
	share := cacheShareBytes(m, p)
	ws := WorkingSetBytes(v, n)
	fits := ws <= share

	var faces int64 // total faces over the three directions, in bytes/comp
	for d := 0; d < 3; d++ {
		sz := [3]int64{n64, n64, n64}
		sz[d]++
		faces += sz[0] * sz[1] * sz[2] * 8
	}

	var b float64
	switch v.Family {
	case sched.Series:
		// Per direction (summed via `faces`):
		//   pass 1: read phi0 (C comps, with spill re-reads), write-allocate
		//           flux (C comps);
		//   velocity copy: read flux comp, write-allocate velocity;
		//   pass 2a: read flux + velocity, write back flux;
		//   pass 2b: re-read flux, read-modify-write phi1.
		b = 3*float64(c*cell)*StencilReReadFactor + // pass-1 phi0 reads, per dir
			2*float64(c)*float64(faces) + // pass-1 flux write-allocate
			3*float64(faces) + // velocity copy (read + write-alloc)
			float64(c+1)*float64(faces) + // pass-2a reads
			float64(c)*float64(faces) + // pass-2a write-back
			float64(c)*float64(faces) + // pass-2b flux re-read
			3*2*float64(c*cell) // pass-2b phi1 RMW, per dir
	case sched.ShiftFuse:
		// Velocity pass: read 3 phi0 components, write-allocate 3 face
		// fields. Fused sweep (per component for CLO): read phi0 comp once
		// (the fusion's point), re-read the 3 velocity fields, RMW phi1.
		b = 3*float64(cell) + 2*float64(faces) + // velocity pass
			float64(c*cell)*StencilReReadFactor + // fused phi0 reads
			float64(c)*float64(faces) + // velocity re-reads per comp sweep
			2*float64(c*cell) // phi1 write-allocate
	case sched.BlockedWavefront:
		// Like the fused schedule, but the per-tile traversal re-reads the
		// halo planes of phi0 at tile boundaries in y and z (dimensions the
		// tiling actually cuts).
		sh := v.TileShape()
		halo := 1.0
		for _, d := range []int{1, 2} {
			if sh[d] < n {
				t := float64(sh[d])
				halo *= (t + 2*kernel.NGhost) / t
			}
		}
		b = 3*float64(cell) + 2*float64(faces) +
			float64(c*cell)*halo +
			float64(c)*float64(faces) +
			2*float64(c*cell)
	case sched.OverlappedTile:
		// Each tile reads its ghosted phi0 region; shared halos are partly
		// served by the socket L3. Velocity and flux temporaries are
		// tile-local and stay in cache; phi1 is write-allocated once. Only
		// dimensions the tiling cuts contribute halo re-reads (pencil and
		// slab tiles skip whole factors).
		sh := v.TileShape()
		halo := 1.0
		for _, td := range sh {
			if td < n {
				t := float64(td)
				halo *= (t + 2*kernel.NGhost) / t
			}
		}
		haloEff := 1 + (halo-1)*(1-HaloL3SharingFactor)
		b = float64(c*cell)*haloEff + 2*float64(c*cell)
		if !fits {
			// Tiles too large for the cache share spill their temporaries,
			// degrading toward the series schedule.
			b += 2 * float64(c) * float64(faces)
		}
	}
	// Blend between the compulsory regime and the full-spill regime as the
	// working set grows past the cache share, with a gentle TLB/page
	// pressure term for very large footprints.
	comp := float64(compulsoryBytes(n))
	if v.Family == sched.OverlappedTile {
		// For overlapped tiles the "fit" form already includes the halo
		// re-read traffic; b computed above is that form unless spilled.
		comp = b
	}
	ratio := float64(ws) / float64(share)
	if ratio > 1 {
		decades := math.Log2(ratio)
		frac := decades / SpillBlendDecades
		if frac > 1 {
			frac = 1
		}
		b = comp + (b-comp)*frac
		b *= 1 + TLBPressurePerDecade*decades
	} else {
		b = comp
	}
	if v.Comp == sched.CLI {
		b *= CLITrafficPenalty
	}
	return Traffic{Bytes: int64(b), Fits: fits}
}

// FlopsPerBox returns the floating-point work of one application of
// variant v to an N^3 box, including the extra work of the fused schedules'
// velocity precomputation and the overlapped tiles' recomputation.
func FlopsPerBox(v sched.Variant, n int) float64 {
	b := box.Cube(n)
	w := kernel.WorkFor(b)
	flops := float64(w.Flops)
	fusedFamily := v.Family != sched.Series &&
		!(v.Family == sched.OverlappedTile && v.Intra == sched.BasicSched)
	if fusedFamily {
		// Velocity pass: one face average per face (single component).
		flops += float64(w.Faces) * kernel.FlopsPerFaceAvg
	}
	if v.Family == sched.OverlappedTile {
		rf := tiling.DecomposeVect(b, ivect.IntVect(v.TileShape())).OverlapStats().RecomputeFactor()
		// Face evaluations (eval1, eval2 and the velocity pass) are
		// recomputed on tile surfaces; the accumulation is not.
		flops = float64(w.FlopsAccum) + (flops-float64(w.FlopsAccum))*rf
	}
	if !fusedFamily {
		flops *= StagingComputePenalty
	}
	if v.Comp == sched.CLI {
		flops *= CLIComputePenalty
	}
	return flops
}
