// Package perfmodel is the analytic performance substrate that stands in
// for the paper's testbeds: Table I temporary-storage formulas, a
// per-schedule DRAM-traffic model, and a roofline-style execution-time
// model with bandwidth contention, socket filling, wavefront pipeline
// efficiency and parallelization-granularity limits. It regenerates the
// scaling curves of Figures 2-4 and 9-12 in shape (this reproduction runs
// on commodity hardware; see DESIGN.md for the substitution argument).
package perfmodel

import (
	"fmt"

	"stencilsched/internal/kernel"
	"stencilsched/internal/sched"
)

// TempData is Table I: the temporary flux and velocity storage of each
// schedule category, in float64 elements.
type TempData struct {
	FluxElems int64
	VelElems  int64
}

// Bytes returns the total temporary bytes.
func (t TempData) Bytes() int64 { return (t.FluxElems + t.VelElems) * 8 }

// TableI returns the paper's Table I formulas for a variant on an N^3 box
// with P threads (P enters only for the per-thread tiles of the overlapped
// schedules). C is the component count (5).
//
// Formulas, verbatim from Table I with C = kernel.NComp, T = v.TileSize:
//
//	Series of loops:            flux C(N+1)^3,        velocity (N+1)^3
//	Loops shifted and fused:    flux 2 + 2N + 2N^2,   velocity 3(N+1)^3
//	Shifted, fused, tiled (WF): flux 2(3CN^2),        velocity 3(N+1)^3
//	Shifted, fused, overlapped: flux PC(2 + 2T + 2T^2), velocity PC(3(T+1)^3)
//
// The overlapped-tile row with a Basic-Sched intra-tile schedule is not in
// Table I (the paper lists the fused form); it needs per-thread tile-sized
// flux and velocity arrays: flux PC(T+1)^3, velocity P(T+1)^3.
func TableI(v sched.Variant, n, p int) (TempData, error) {
	if err := v.Validate(); err != nil {
		return TempData{}, err
	}
	if n <= 0 || p <= 0 {
		return TempData{}, fmt.Errorf("perfmodel: need positive N and P (got %d, %d)", n, p)
	}
	c := int64(kernel.NComp)
	n64 := int64(n)
	np1 := n64 + 1
	switch v.Family {
	case sched.Series:
		return TempData{FluxElems: c * np1 * np1 * np1, VelElems: np1 * np1 * np1}, nil
	case sched.ShiftFuse:
		return TempData{
			FluxElems: 2 + 2*n64 + 2*n64*n64,
			VelElems:  3 * np1 * np1 * np1,
		}, nil
	case sched.BlockedWavefront:
		return TempData{
			FluxElems: 2 * (3 * c * n64 * n64),
			VelElems:  3 * np1 * np1 * np1,
		}, nil
	case sched.OverlappedTile:
		sh := v.TileShape()
		tx, ty := int64(sh[0]), int64(sh[1])
		var tp1 int64 = 1
		for _, t := range sh {
			tp1 *= int64(t) + 1
		}
		p64 := int64(p)
		if v.Intra == sched.FusedSched {
			return TempData{
				FluxElems: p64 * c * (2 + 2*tx + 2*tx*ty),
				VelElems:  p64 * c * (3 * tp1),
			}, nil
		}
		return TempData{
			FluxElems: p64 * c * tp1,
			VelElems:  p64 * tp1,
		}, nil
	default:
		return TempData{}, fmt.Errorf("perfmodel: unknown family %v", v.Family)
	}
}

// TableIRows renders Table I for the given N and P as (schedule, flux
// formula value, velocity formula value) rows in the paper's order.
type TableIRow struct {
	Schedule  string
	Flux, Vel int64
}

// TableIFor returns the four rows of Table I evaluated at N, T, P.
func TableIFor(n, tileSize, p int) []TableIRow {
	rows := []struct {
		name string
		v    sched.Variant
	}{
		{"Series of Loops", sched.Variant{Family: sched.Series}},
		{"Loops shifted and fused", sched.Variant{Family: sched.ShiftFuse}},
		{"Loops shifted, fused, tiled", sched.Variant{Family: sched.BlockedWavefront, Par: sched.WithinBox, TileSize: tileSize}},
		{"Shifted, fused, overlapping tiles", sched.Variant{Family: sched.OverlappedTile, TileSize: tileSize, Intra: sched.FusedSched}},
	}
	out := make([]TableIRow, 0, len(rows))
	for _, r := range rows {
		td, err := TableI(r.v, n, p)
		if err != nil {
			panic(err) // static rows are always valid
		}
		out = append(out, TableIRow{Schedule: r.name, Flux: td.FluxElems, Vel: td.VelElems})
	}
	return out
}
