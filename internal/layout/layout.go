// Package layout provides the level-of-boxes data management of a
// structured-grid PDE framework: disjoint box layouts (the domain
// decomposition), level data (one ghosted FArrayBox per box), and the
// ghost-cell exchange that fills each box's ghost layers from the valid
// regions of neighboring boxes, with optional periodic wrapping.
//
// It is the mini-Chombo substrate of this reproduction: the paper's
// motivation (Fig. 1) is that small boxes pay a large exchange overhead
// relative to their physical cells, pushing frameworks toward the large
// boxes whose on-node scheduling the study then repairs.
package layout

import (
	"fmt"

	"stencilsched/internal/box"
	"stencilsched/internal/fab"
	"stencilsched/internal/ivect"
	"stencilsched/internal/parallel"
)

// Layout is a disjoint decomposition of a rectangular domain into boxes.
type Layout struct {
	// Domain is the problem domain in cells.
	Domain box.Box
	// Periodic marks the directions with periodic boundary conditions.
	Periodic [3]bool
	// Boxes are the disjoint boxes covering Domain, ordered x-fastest by
	// grid position when produced by Decompose.
	Boxes []box.Box
}

// Decompose splits domain into boxes of at most boxSize cells per
// dimension (ragged at the high ends when boxSize does not divide the
// domain), the decomposition Chombo applies to a level.
func Decompose(domain box.Box, boxSize int, periodic [3]bool) (*Layout, error) {
	if domain.IsEmpty() {
		return nil, fmt.Errorf("layout: empty domain")
	}
	if boxSize <= 0 {
		return nil, fmt.Errorf("layout: box size %d must be positive", boxSize)
	}
	l := &Layout{Domain: domain, Periodic: periodic, Boxes: domain.Tiles(boxSize)}
	if err := l.Verify(); err != nil {
		return nil, err
	}
	return l, nil
}

// Verify checks the layout invariants: every box non-empty and inside the
// domain, and the boxes partition the domain exactly.
func (l *Layout) Verify() error {
	total := 0
	for i, b := range l.Boxes {
		if b.IsEmpty() {
			return fmt.Errorf("layout: box %d empty", i)
		}
		if !l.Domain.ContainsBox(b) {
			return fmt.Errorf("layout: box %d (%v) escapes domain %v", i, b, l.Domain)
		}
		total += b.NumPts()
	}
	if total != l.Domain.NumPts() {
		return fmt.Errorf("layout: boxes cover %d of %d domain cells", total, l.Domain.NumPts())
	}
	// Disjointness via the spatial index: each box only checks the
	// handful of boxes sharing its buckets, keeping Verify linear for the
	// paper's 12,288-box layouts.
	ix := newBoxIndex(l)
	var overlapErr error
	for i, a := range l.Boxes {
		i, a := i, a
		ix.query(a, func(j int) {
			if overlapErr == nil && j != i && a.Intersects(l.Boxes[j]) {
				overlapErr = fmt.Errorf("layout: boxes %d and %d overlap", i, j)
			}
		})
		if overlapErr != nil {
			return overlapErr
		}
	}
	return nil
}

// NumBoxes returns the number of boxes in the layout.
func (l *Layout) NumBoxes() int { return len(l.Boxes) }

// periodicShifts enumerates the periodic image shifts relevant for ghost
// filling: per periodic direction {-L, 0, +L}, otherwise {0}.
func (l *Layout) periodicShifts() []ivect.IntVect {
	opts := [3][]int{}
	size := l.Domain.Size()
	for d := 0; d < 3; d++ {
		if l.Periodic[d] {
			opts[d] = []int{-size[d], 0, size[d]}
		} else {
			opts[d] = []int{0}
		}
	}
	var out []ivect.IntVect
	for _, sz := range opts[2] {
		for _, sy := range opts[1] {
			for _, sx := range opts[0] {
				out = append(out, ivect.New(sx, sy, sz))
			}
		}
	}
	return out
}

// Motion is one copy the exchange performs: fill Region of box Dst's
// ghosted FAB by reading box Src's FAB at Region + Shift (Shift is the
// negated periodic image displacement).
type Motion struct {
	Src, Dst int
	Region   box.Box
	Shift    ivect.IntVect
}

// Copier is a precomputed ghost-exchange plan for one layout and ghost
// depth, the analogue of Chombo's Copier. Building it costs O(boxes^2 *
// periodic images); executing it is pure data motion.
type Copier struct {
	Layout *Layout
	NGhost int
	// motions grouped by destination box so the exchange can run
	// destination-parallel without write conflicts.
	byDst [][]Motion
	count int
}

// boxIndex is a uniform spatial hash over the domain accelerating
// "which boxes intersect this region" queries, so copier construction is
// near-linear in the box count rather than quadratic.
type boxIndex struct {
	bucket  ivect.IntVect // bucket size per dimension (max box extent)
	origin  ivect.IntVect
	dims    ivect.IntVect // bucket-grid dimensions
	cells   [][]int       // bucket -> box indices
	stamp   []int         // per-box dedup stamp
	queryID int
}

func newBoxIndex(l *Layout) *boxIndex {
	ix := &boxIndex{origin: l.Domain.Lo, bucket: ivect.Ones, stamp: make([]int, len(l.Boxes))}
	for _, b := range l.Boxes {
		ix.bucket = ix.bucket.Max(b.Size())
	}
	sz := l.Domain.Size()
	for d := 0; d < 3; d++ {
		ix.dims[d] = (sz[d] + ix.bucket[d] - 1) / ix.bucket[d]
	}
	ix.cells = make([][]int, ix.dims.Prod())
	for i, b := range l.Boxes {
		ix.forBuckets(b, func(cell int) {
			ix.cells[cell] = append(ix.cells[cell], i)
		})
	}
	return ix
}

// forBuckets visits the bucket cells overlapping region, clipped to the
// grid.
func (ix *boxIndex) forBuckets(region box.Box, fn func(cell int)) {
	var lo, hi ivect.IntVect
	for d := 0; d < 3; d++ {
		lo[d] = (region.Lo[d] - ix.origin[d]) / ix.bucket[d]
		hi[d] = (region.Hi[d] - ix.origin[d]) / ix.bucket[d]
		if region.Lo[d]-ix.origin[d] < 0 {
			lo[d] = 0 // clip: out-of-domain parts have no boxes anyway
		}
		lo[d] = max(0, min(lo[d], ix.dims[d]-1))
		hi[d] = max(0, min(hi[d], ix.dims[d]-1))
	}
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				fn(x + ix.dims[0]*(y+ix.dims[1]*z))
			}
		}
	}
}

// query invokes fn once per box whose bounds may intersect region.
func (ix *boxIndex) query(region box.Box, fn func(boxIdx int)) {
	ix.queryID++
	ix.forBuckets(region, func(cell int) {
		for _, bi := range ix.cells[cell] {
			if ix.stamp[bi] != ix.queryID {
				ix.stamp[bi] = ix.queryID
				fn(bi)
			}
		}
	})
}

// NewCopier builds the exchange plan: for every destination box, every
// ghost cell whose periodic preimage lies in the domain is mapped to the
// unique source box covering that preimage. A spatial index keeps the
// construction near-linear in the box count (12,288 boxes at N=16 on the
// paper's domain would otherwise cost ~10^9 box-pair tests).
func NewCopier(l *Layout, nghost int) *Copier {
	if nghost < 0 {
		panic(fmt.Sprintf("layout: negative ghost depth %d", nghost))
	}
	c := &Copier{Layout: l, NGhost: nghost, byDst: make([][]Motion, len(l.Boxes))}
	shifts := l.periodicShifts()
	ix := newBoxIndex(l)
	for di, db := range l.Boxes {
		ghosted := db.Grow(nghost)
		for _, sh := range shifts {
			// src ∩ ghosted.Shift(-sh) in unshifted source coordinates.
			target := ghosted.ShiftVect(sh.Neg())
			sh := sh
			ix.query(target, func(si int) {
				if si == di && sh == ivect.Zero {
					return // a box's own valid data is already in place
				}
				r := ghosted.Intersect(l.Boxes[si].ShiftVect(sh))
				if r.IsEmpty() {
					return
				}
				c.byDst[di] = append(c.byDst[di], Motion{
					Src: si, Dst: di, Region: r, Shift: sh.Neg(),
				})
				c.count++
			})
		}
	}
	return c
}

// NumMotions returns the number of copy regions in the plan.
func (c *Copier) NumMotions() int { return c.count }

// Motions returns the plan's copy regions grouped by destination box. The
// slices are shared with the copier; callers must not mutate them.
func (c *Copier) Motions() [][]Motion { return c.byDst }

// ExchangeBytes returns the total bytes one exchange moves for the given
// component count — the ghost-communication volume the paper's Figure 1
// motivates minimizing via larger boxes.
func (c *Copier) ExchangeBytes(ncomp int) int64 {
	var cells int64
	for _, ms := range c.byDst {
		for _, m := range ms {
			cells += int64(m.Region.NumPts())
		}
	}
	return cells * int64(ncomp) * 8
}

// LevelData holds one ghosted FAB per layout box, the distributed solution
// container of the framework.
type LevelData struct {
	Layout *Layout
	NComp  int
	NGhost int
	Fabs   []*fab.FAB
	copier *Copier
}

// NewLevelData allocates level data with the given components and ghost
// depth, and precomputes its exchange plan.
func NewLevelData(l *Layout, ncomp, nghost int) *LevelData {
	ld := &LevelData{
		Layout: l,
		NComp:  ncomp,
		NGhost: nghost,
		Fabs:   make([]*fab.FAB, len(l.Boxes)),
		copier: NewCopier(l, nghost),
	}
	for i, b := range l.Boxes {
		ld.Fabs[i] = fab.New(b.Grow(nghost), ncomp)
	}
	return ld
}

// Copier returns the exchange plan.
func (ld *LevelData) Copier() *Copier { return ld.copier }

// Exchange fills every box's ghost cells from the valid data of the boxes
// covering them (including periodic images), in parallel over destination
// boxes. Ghost cells with no periodic preimage in the domain (physical
// boundaries of non-periodic directions) are left untouched.
func (ld *LevelData) Exchange(threads int) {
	parallel.Dynamic(threads, len(ld.Fabs), 1, func(_, di int) {
		for _, m := range ld.copier.byDst[di] {
			ld.Fabs[di].CopyFromShifted(ld.Fabs[m.Src], m.Region, m.Shift, 0, 0, ld.NComp)
		}
	})
}

// ForEachBox runs fn(i, valid, fab) over the level's boxes with the given
// thread count — the P>=Box iteration pattern.
func (ld *LevelData) ForEachBox(threads int, fn func(i int, valid box.Box, f *fab.FAB)) {
	parallel.Dynamic(threads, len(ld.Fabs), 1, func(_, i int) {
		fn(i, ld.Layout.Boxes[i], ld.Fabs[i])
	})
}

// FillFromFunction sets every valid cell (not ghosts) of every box from the
// pointwise function f(p, comp).
func (ld *LevelData) FillFromFunction(threads int, f func(p ivect.IntVect, c int) float64) {
	ld.ForEachBox(threads, func(i int, valid box.Box, fb *fab.FAB) {
		for c := 0; c < ld.NComp; c++ {
			c := c
			valid.ForEach(func(p ivect.IntVect) { fb.Set(p, c, f(p, c)) })
		}
	})
}

// SumComp sums component c over all valid regions — a conserved quantity
// for conservative updates.
func (ld *LevelData) SumComp(c int) float64 {
	var s float64
	for i, fb := range ld.Fabs {
		s += fb.SumComp(ld.Layout.Boxes[i], c)
	}
	return s
}

// PaperDomain returns the evaluation domain of Section III-C: 50,331,648
// cells arranged as 512 x 384 x 256, which divides evenly into 12,288 boxes
// of 16^3, 1,536 of 32^3, 192 of 64^3 or 24 of 128^3.
func PaperDomain() box.Box {
	return box.NewSized(ivect.Zero, ivect.New(512, 384, 256))
}
