package layout

import (
	"math"
	"testing"

	"stencilsched/internal/box"
	"stencilsched/internal/ivect"
)

var allPeriodic = [3]bool{true, true, true}

func TestDecomposeCounts(t *testing.T) {
	// The paper's decompositions of the 50,331,648-cell domain.
	domain := PaperDomain()
	if domain.NumPts() != 50331648 {
		t.Fatalf("paper domain has %d cells", domain.NumPts())
	}
	for _, c := range []struct{ n, boxes int }{
		{16, 12288}, {32, 1536}, {64, 192}, {128, 24},
	} {
		l, err := Decompose(domain, c.n, allPeriodic)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumBoxes() != c.boxes {
			t.Errorf("N=%d: %d boxes, want %d", c.n, l.NumBoxes(), c.boxes)
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(box.Empty(), 8, allPeriodic); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := Decompose(box.Cube(8), 0, allPeriodic); err == nil {
		t.Error("zero box size accepted")
	}
}

func TestVerifyCatchesBadLayouts(t *testing.T) {
	good, err := Decompose(box.Cube(8), 4, allPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	overlapping := &Layout{Domain: good.Domain, Boxes: append([]box.Box{good.Boxes[0]}, good.Boxes...)}
	if err := overlapping.Verify(); err == nil {
		t.Error("overlapping boxes accepted")
	}
	escaping := &Layout{Domain: box.Cube(4), Boxes: []box.Box{box.Cube(8)}}
	if err := escaping.Verify(); err == nil {
		t.Error("escaping box accepted")
	}
	sparse := &Layout{Domain: box.Cube(8), Boxes: []box.Box{box.Cube(4)}}
	if err := sparse.Verify(); err == nil {
		t.Error("non-covering layout accepted")
	}
}

// globalField is a deterministic function of the wrapped global cell index,
// distinct per component.
func globalField(domain box.Box, p ivect.IntVect, c int) float64 {
	w := p.Sub(domain.Lo).Mod(domain.Size()).Add(domain.Lo)
	return float64(w[0]) + 1000*float64(w[1]) + 1e6*float64(w[2]) + 1e9*float64(c)
}

func TestExchangeFillsAllPeriodicGhosts(t *testing.T) {
	domain := box.NewSized(ivect.New(0, 0, 0), ivect.New(16, 8, 8))
	l, err := Decompose(domain, 4, allPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	ld := NewLevelData(l, 2, 2)
	ld.FillFromFunction(2, func(p ivect.IntVect, c int) float64 {
		return globalField(domain, p, c)
	})
	ld.Exchange(3)
	for i, fb := range ld.Fabs {
		ghosted := l.Boxes[i].Grow(2)
		for c := 0; c < 2; c++ {
			c := c
			ghosted.ForEach(func(p ivect.IntVect) {
				want := globalField(domain, p, c)
				if got := fb.Get(p, c); got != want {
					t.Fatalf("box %d comp %d at %v: got %v, want %v", i, c, p, got, want)
				}
			})
		}
	}
}

func TestExchangeNonPeriodicLeavesBoundaryGhosts(t *testing.T) {
	domain := box.Cube(8)
	l, err := Decompose(domain, 4, [3]bool{false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	ld := NewLevelData(l, 1, 2)
	for _, fb := range ld.Fabs {
		fb.Fill(-99) // sentinel: must survive only outside the x-extended domain
	}
	ld.FillFromFunction(1, func(p ivect.IntVect, c int) float64 {
		return globalField(domain, p, c)
	})
	ld.Exchange(2)
	for i, fb := range ld.Fabs {
		ghosted := l.Boxes[i].Grow(2)
		ghosted.ForEach(func(p ivect.IntVect) {
			got := fb.Get(p, 0)
			if p[0] < 0 || p[0] > 7 {
				// Physical x boundary: no periodic preimage, sentinel stays.
				if got != -99 {
					t.Fatalf("box %d at %v: boundary ghost overwritten with %v", i, p, got)
				}
			} else if got != globalField(domain, p, 0) {
				t.Fatalf("box %d at %v: got %v, want %v", i, p, got, globalField(domain, p, 0))
			}
		})
	}
}

func TestSingleBoxPeriodicSelfExchange(t *testing.T) {
	// One box covering the whole periodic domain: all ghosts come from the
	// box's own periodic images.
	domain := box.Cube(6)
	l, err := Decompose(domain, 6, allPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumBoxes() != 1 {
		t.Fatal("expected a single box")
	}
	ld := NewLevelData(l, 1, 2)
	ld.FillFromFunction(1, func(p ivect.IntVect, c int) float64 {
		return globalField(domain, p, c)
	})
	ld.Exchange(1)
	ghosted := domain.Grow(2)
	ghosted.ForEach(func(p ivect.IntVect) {
		want := globalField(domain, p, 0)
		if got := ld.Fabs[0].Get(p, 0); got != want {
			t.Fatalf("at %v: got %v, want %v", p, got, want)
		}
	})
}

func TestCopierMotionStats(t *testing.T) {
	domain := box.Cube(8)
	l, err := Decompose(domain, 4, allPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCopier(l, 2)
	if c.NumMotions() == 0 {
		t.Fatal("no motions planned")
	}
	// Exchange volume: every box's ghost region has a periodic preimage, so
	// the moved cells are exactly sum over boxes of (ghosted minus valid):
	// per 4^3 box grown by 2, 8^3 - 4^3 cells.
	perBox := int64(8*8*8 - 4*4*4)
	if got := c.ExchangeBytes(1); got != int64(l.NumBoxes())*perBox*8 {
		t.Fatalf("ExchangeBytes = %d, want %d", got, int64(l.NumBoxes())*perBox*8)
	}
}

func TestExchangeBytesShrinksWithBoxSize(t *testing.T) {
	// Fig. 1's motivation quantified through the exchange plan: bigger
	// boxes move fewer ghost bytes for the same domain.
	domain := box.Cube(32)
	var prev int64 = math.MaxInt64
	for _, n := range []int{8, 16, 32} {
		l, err := Decompose(domain, n, allPeriodic)
		if err != nil {
			t.Fatal(err)
		}
		b := NewCopier(l, 2).ExchangeBytes(5)
		if b >= prev {
			t.Fatalf("exchange bytes not decreasing: N=%d moves %d, previous %d", n, b, prev)
		}
		prev = b
	}
}

func TestSumCompConservedByExchange(t *testing.T) {
	domain := box.Cube(8)
	l, _ := Decompose(domain, 4, allPeriodic)
	ld := NewLevelData(l, 1, 2)
	ld.FillFromFunction(1, func(p ivect.IntVect, c int) float64 {
		return globalField(domain, p, c)
	})
	before := ld.SumComp(0)
	ld.Exchange(2)
	if after := ld.SumComp(0); after != before {
		t.Fatalf("exchange changed valid sum: %v -> %v", before, after)
	}
}

func TestCopierIndexMatchesBruteForce(t *testing.T) {
	// The spatial index must find exactly the motions the quadratic scan
	// finds (as (src,dst,region,shift) sets).
	for _, periodic := range [][3]bool{{true, true, true}, {false, true, false}} {
		l, err := Decompose(box.NewSized(ivect.New(-3, 2, 5), ivect.New(24, 16, 12)), 5, periodic)
		if err != nil {
			t.Fatal(err)
		}
		fast := NewCopier(l, 2)
		// Brute force reference.
		type mk struct {
			src, dst int
			region   box.Box
			shift    ivect.IntVect
		}
		want := map[mk]bool{}
		shifts := l.periodicShifts()
		for di, db := range l.Boxes {
			ghosted := db.Grow(2)
			for si, sb := range l.Boxes {
				for _, sh := range shifts {
					if si == di && sh == ivect.Zero {
						continue
					}
					r := ghosted.Intersect(sb.ShiftVect(sh))
					if r.IsEmpty() {
						continue
					}
					want[mk{si, di, r, sh.Neg()}] = true
				}
			}
		}
		got := map[mk]bool{}
		for _, ms := range fast.Motions() {
			for _, m := range ms {
				got[mk{m.Src, m.Dst, m.Region, m.Shift}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("periodic %v: indexed copier has %d motions, brute force %d", periodic, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("periodic %v: missing motion %+v", periodic, k)
			}
		}
	}
}

func TestCopierGhostZeroHasOnlyAbuttingMotions(t *testing.T) {
	l, _ := Decompose(box.Cube(8), 4, [3]bool{})
	c := NewCopier(l, 0)
	if c.NumMotions() != 0 {
		t.Fatalf("ghost depth 0 planned %d motions", c.NumMotions())
	}
}
