package tunecache

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestKeyInjective pins the \x1f-collision bug: parts containing the old
// separator (or any other byte) must never make two distinct part lists
// produce the same key.
func TestKeyInjective(t *testing.T) {
	collisions := [][2][]string{
		{{"a\x1fb"}, {"a", "b"}},           // the original bug
		{{"a", "b\x1fc"}, {"a", "b", "c"}}, // separator mid-list
		{{"a\x1f", "b"}, {"a", "\x1fb"}},   // separator at a boundary
		{{"3:abc"}, {"3:a", "bc"}},         // parts that mimic the new encoding
		{{""}, {}},                         // empty part vs no part
		{{"", ""}, {""}},                   // part-count must matter
		{{"12", "3"}, {"1", "23"}},         // digits sliding across a boundary
	}
	for _, c := range collisions {
		a, b := Key(c[0]...), Key(c[1]...)
		if a == b {
			t.Errorf("Key(%q) == Key(%q) == %q; keys must be injective", c[0], c[1], a)
		}
	}
	// Same parts still give the same key.
	if Key("a", "b") != Key("a", "b") {
		t.Error("Key is not deterministic")
	}
}

// TestMemLayerBounded: the in-memory read-through layer must stay at its
// cap no matter how many distinct keys pass through, evicting LRU-first,
// while disk still serves evicted keys.
func TestMemLayerBounded(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const cap = 8
	c.SetMemLimit(cap)
	const total = 10 * cap
	for i := 0; i < total; i++ {
		if err := c.Put(Key("k", fmt.Sprint(i)), i); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.MemLen(); n != cap {
		t.Fatalf("MemLen = %d after %d puts, want cap %d", n, total, cap)
	}
	// Evicted keys still hit via disk (and re-enter the bounded layer).
	var got int
	if ok, err := c.Get(Key("k", "0"), &got); err != nil || !ok || got != 0 {
		t.Fatalf("evicted key via disk = (%v, %v, %d), want hit 0", ok, err, got)
	}
	if n := c.MemLen(); n != cap {
		t.Fatalf("MemLen = %d after refill, want cap %d", n, cap)
	}
	// The most recently touched key survives a run of fresh inserts...
	for i := 0; i < cap-1; i++ {
		if err := c.Put(Key("fresh", fmt.Sprint(i)), i); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.memGet(Key("k", "0")); !ok {
		t.Fatal("recently used key evicted before older ones")
	}
}

// fakeReplicator is an in-memory upstream standing in for the
// coordinator's cache authority.
type fakeReplicator struct {
	mu      sync.Mutex
	entries map[string]json.RawMessage
	fetches int
	stores  int
}

func newFakeReplicator() *fakeReplicator {
	return &fakeReplicator{entries: make(map[string]json.RawMessage)}
}

func (r *fakeReplicator) Fetch(key string) (json.RawMessage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetches++
	raw, ok := r.entries[key]
	return raw, ok
}

func (r *fakeReplicator) Store(key string, value json.RawMessage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stores++
	r.entries[key] = value
}

// TestReadThroughReplication: a local miss consults the replicator, a
// remote hit fills the local cache (so the next read stays local), and a
// local Put pushes upstream.
func TestReadThroughReplication(t *testing.T) {
	up := newFakeReplicator()
	key := Key("host", "problem")
	up.entries[key] = json.RawMessage(`{"n":7}`)

	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetReplicator(up)

	var got map[string]int
	if ok, err := c.Get(key, &got); err != nil || !ok || got["n"] != 7 {
		t.Fatalf("read-through Get = (%v, %v, %v), want remote hit n=7", ok, err, got)
	}
	if up.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", up.fetches)
	}
	// Filled locally: the second read must not go upstream again.
	if ok, _ := c.Get(key, &got); !ok {
		t.Fatal("second Get missed after local fill")
	}
	if up.fetches != 1 {
		t.Fatalf("second Get went upstream (fetches = %d)", up.fetches)
	}
	// The fill is durable, not just in memory.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := c2.Get(key, &got); !ok {
		t.Fatal("read-through fill did not reach disk")
	}

	// A local Put replicates upstream; PutRaw (the replication fill path
	// itself) must not echo back upstream.
	if err := c.Put(Key("host", "other"), 42); err != nil {
		t.Fatal(err)
	}
	if up.stores != 1 {
		t.Fatalf("stores = %d after Put, want 1", up.stores)
	}
	if _, ok := up.entries[Key("host", "other")]; !ok {
		t.Fatal("Put did not reach the upstream")
	}
	if err := c.PutRaw(Key("host", "filled"), json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if up.stores != 1 {
		t.Fatalf("PutRaw echoed upstream (stores = %d)", up.stores)
	}

	// A miss everywhere is still just a miss.
	if ok, err := c.Get(Key("host", "absent"), &got); ok || err != nil {
		t.Fatalf("absent key = (%v, %v), want clean miss", ok, err)
	}
}
