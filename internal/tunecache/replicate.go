package tunecache

import "encoding/json"

// Replicator is the fleet replication hook: a cache with a replicator
// reads through to it on local miss (Fetch) and pushes fresh entries to
// it after a local Put (Store). In a stencilserved fleet the replicator
// is the coordinator's cache authority, so a measurement made on one
// peer answers the same problem on every peer — including a job
// re-placed after its original peer died.
//
// Both calls are best-effort by contract: Fetch returning false and
// Store silently dropping the entry must both be safe, because the
// worst case has to stay "re-measure", never "service down".
// Implementations are called with no cache lock held and may block on
// the network; they must be safe for concurrent use.
type Replicator interface {
	// Fetch looks key up remotely, reporting whether it was found.
	Fetch(key string) (json.RawMessage, bool)
	// Store pushes a freshly written entry upstream.
	Store(key string, value json.RawMessage)
}

// SetReplicator installs (or, with nil, removes) the replication hook.
func (c *Cache) SetReplicator(r Replicator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repl = r
}
