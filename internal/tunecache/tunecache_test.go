package tunecache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type tuneRow struct {
	Variant string  `json:"variant"`
	Seconds float64 `json:"seconds"`
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(Fingerprint(), "boxn=8", "reps=2", "Baseline: P>=Box")
	var miss []tuneRow
	if ok, err := c.Get(key, &miss); err != nil || ok {
		t.Fatalf("empty cache Get = (%v, %v), want miss", ok, err)
	}
	in := []tuneRow{{"Shift-Fuse: P>=Box", 0.012}, {"Baseline: P>=Box", 0.034}}
	if err := c.Put(key, in); err != nil {
		t.Fatal(err)
	}
	var out []tuneRow
	if ok, err := c.Get(key, &out); err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v), want hit", ok, err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("host", "problem")
	if err := c1.Put(key, map[string]int{"n": 7}); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if ok, err := c2.Get(key, &got); err != nil || !ok || got["n"] != 7 {
		t.Fatalf("reopened Get = (%v, %v, %+v), want hit with n=7", ok, err, got)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}
}

func TestCorruptEntryIsMissAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("host", "corrupt")
	if err := c.Put(key, 42); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk, then reopen (drops the memory layer).
	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(names) != 1 {
		t.Fatalf("want one entry file, got %v", names)
	}
	if err := os.WriteFile(names[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if ok, err := c.Get(key, &got); err != nil || ok {
		t.Fatalf("corrupt Get = (%v, %v), want clean miss", ok, err)
	}
	// Re-Put repairs the entry.
	if err := c.Put(key, 43); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Get(key, &got); err != nil || !ok || got != 43 {
		t.Fatalf("Get after repair = (%v, %v, %d), want hit 43", ok, err, got)
	}
}

func TestKeyMismatchOnDiskIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(Key("a"), 1); err != nil {
		t.Fatal(err)
	}
	// Rename the entry file to the hash of a different key: the stored
	// key no longer matches, so it must read as a miss, not a wrong hit.
	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	other := Open2(t, dir).path(Key("b"))
	if err := os.Rename(names[0], other); err != nil {
		t.Fatal(err)
	}
	c, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if ok, _ := c.Get(Key("b"), &got); ok {
		t.Fatal("hash collision served the wrong entry")
	}
}

// Open2 is a test helper returning an open cache or failing the test.
func Open2(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistinctKeys(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Fatal("key joining is ambiguous")
	}
	if !strings.Contains(Fingerprint(), "cpus=") {
		t.Fatalf("fingerprint %q missing cpu count", Fingerprint())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c := Open2(t, t.TempDir())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key("shared")
			for j := 0; j < 50; j++ {
				if err := c.Put(key, i); err != nil {
					t.Error(err)
					return
				}
				var got int
				if _, err := c.Get(key, &got); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
