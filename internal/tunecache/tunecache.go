// Package tunecache persists autotune results across service restarts
// and requests. Measured tuning is expensive (seconds to minutes of
// dedicated benchmarking per request), while its result is stable for a
// given host, problem shape, and candidate set — exactly the shape of
// work a file-backed cache amortizes. Keys combine a host fingerprint
// with the request parameters (see Key and Fingerprint); values are
// opaque JSON supplied by the caller.
//
// The cache is deliberately forgiving: a missing, truncated, or
// corrupted entry file is a miss, never an error, because the worst case
// must be "re-measure", not "service down". Writes go through a
// temporary file and rename, so readers and concurrent writers never
// observe a half-written entry.
package tunecache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Cache is a directory of JSON entry files with an in-memory read-through
// layer. It is safe for concurrent use.
type Cache struct {
	dir string
	mu  sync.Mutex
	mem map[string]json.RawMessage
}

// entry is the on-disk envelope. The full key is stored alongside the
// value so hash collisions are detected (treated as a miss) and entries
// are debuggable with cat.
type entry struct {
	Key     string          `json:"key"`
	SavedAt time.Time       `json:"saved_at"`
	Value   json.RawMessage `json:"value"`
}

// Open returns a cache rooted at dir, creating the directory as needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("tunecache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tunecache: %w", err)
	}
	return &Cache{dir: dir, mem: make(map[string]json.RawMessage)}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Fingerprint identifies the measuring host: results from one machine
// must never answer tuning requests on another, and a Go upgrade can
// shift goroutine scheduling enough to reorder close candidates.
func Fingerprint() string {
	return fmt.Sprintf("%s/%s cpus=%d %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version())
}

// Key builds a cache key from its parts (host fingerprint, problem
// shape, repetitions, candidate names, ...). Parts are joined with a
// separator that cannot appear ambiguously, so distinct part lists give
// distinct keys.
func Key(parts ...string) string {
	return strings.Join(parts, "\x1f")
}

// path maps a key to its entry file. Keys are hashed: they contain
// variant names with characters that are not filesystem-safe.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get looks key up and unmarshals the cached value into out, reporting
// whether it hit. Unreadable or corrupted entries are misses; the only
// errors are from unmarshalling a *valid* entry into an incompatible out.
func (c *Cache) Get(key string, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.mem[key]
	c.mu.Unlock()
	if !ok {
		data, err := os.ReadFile(c.path(key))
		if err != nil {
			return false, nil
		}
		var e entry
		if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
			return false, nil
		}
		raw = e.Value
		c.mu.Lock()
		c.mem[key] = raw
		c.mu.Unlock()
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("tunecache: decode cached value: %w", err)
	}
	return true, nil
}

// Put stores value under key, replacing any previous entry. The write is
// atomic (temp file + rename), so a concurrent Get sees either the old
// entry or the new one, never a torn file.
func (c *Cache) Put(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("tunecache: encode value: %w", err)
	}
	data, err := json.MarshalIndent(entry{Key: key, SavedAt: time.Now().UTC(), Value: raw}, "", "  ")
	if err != nil {
		return fmt.Errorf("tunecache: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("tunecache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunecache: write entry: %w", fmt.Errorf("%v / %v", werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunecache: %w", err)
	}
	c.mu.Lock()
	c.mem[key] = raw
	c.mu.Unlock()
	return nil
}

// Len reports the number of entry files on disk (not the in-memory
// layer), for tests and the health endpoint.
func (c *Cache) Len() int {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}
