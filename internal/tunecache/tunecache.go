// Package tunecache persists autotune results across service restarts
// and requests. Measured tuning is expensive (seconds to minutes of
// dedicated benchmarking per request), while its result is stable for a
// given host, problem shape, and candidate set — exactly the shape of
// work a file-backed cache amortizes. Keys combine a host fingerprint
// with the request parameters (see Key and Fingerprint); values are
// opaque JSON supplied by the caller.
//
// The cache is deliberately forgiving: a missing, truncated, or
// corrupted entry file is a miss, never an error, because the worst case
// must be "re-measure", not "service down". Writes go through a
// temporary file and rename, so readers and concurrent writers never
// observe a half-written entry.
package tunecache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"
)

// DefaultMemEntries bounds the in-memory read-through layer. Disk is the
// durable store; memory only skips re-reading hot entries, and an
// unbounded map would grow with every distinct key a long-lived service
// (or a fleet replicating entries into it) ever touches.
const DefaultMemEntries = 512

// Cache is a directory of JSON entry files with a bounded in-memory
// read-through layer (LRU, DefaultMemEntries entries unless
// SetMemLimit). It is safe for concurrent use.
type Cache struct {
	dir string
	mu  sync.Mutex
	mem map[string]*list.Element // key → element in lru
	lru *list.List               // front = most recent; values are *memEntry
	max int

	repl Replicator
}

type memEntry struct {
	key string
	raw json.RawMessage
}

// entry is the on-disk envelope. The full key is stored alongside the
// value so hash collisions are detected (treated as a miss) and entries
// are debuggable with cat.
type entry struct {
	Key     string          `json:"key"`
	SavedAt time.Time       `json:"saved_at"`
	Value   json.RawMessage `json:"value"`
}

// Open returns a cache rooted at dir, creating the directory as needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("tunecache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tunecache: %w", err)
	}
	return &Cache{
		dir: dir,
		mem: make(map[string]*list.Element),
		lru: list.New(),
		max: DefaultMemEntries,
	}, nil
}

// SetMemLimit bounds the in-memory layer to n entries (n < 1 disables
// it; disk still serves every key).
func (c *Cache) SetMemLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.max = n
	c.evictLocked()
}

// MemLen reports the in-memory layer's entry count (for tests and the
// health endpoint).
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// memGet looks key up in the bounded memory layer, refreshing recency.
func (c *Cache) memGet(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.mem[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry).raw, true
}

// memPut inserts or refreshes key in the memory layer, evicting the
// least-recently-used entries beyond the bound.
func (c *Cache) memPut(key string, raw json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.mem[key]; ok {
		el.Value.(*memEntry).raw = raw
		c.lru.MoveToFront(el)
		return
	}
	c.mem[key] = c.lru.PushFront(&memEntry{key: key, raw: raw})
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	for len(c.mem) > c.max {
		el := c.lru.Back()
		if el == nil {
			return
		}
		c.lru.Remove(el)
		delete(c.mem, el.Value.(*memEntry).key)
	}
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Fingerprint identifies the measuring host: results from one machine
// must never answer tuning requests on another, and a Go upgrade can
// shift goroutine scheduling enough to reorder close candidates.
func Fingerprint() string {
	return fmt.Sprintf("%s/%s cpus=%d %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version())
}

// Key builds a cache key from its parts (host fingerprint, problem
// shape, repetitions, candidate names, ...). Each part is length-prefixed
// ("len:part" concatenated), which is injective: no byte a part may
// contain can make two distinct part lists collide. (The previous
// separator-join encoding collided when a part itself contained the
// separator: Key("a\x1fb") == Key("a", "b").)
func Key(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&b, "%d:%s", len(p), p)
	}
	return b.String()
}

// path maps a key to its entry file. Keys are hashed: they contain
// variant names with characters that are not filesystem-safe.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get looks key up and unmarshals the cached value into out, reporting
// whether it hit. The lookup order is memory → disk → replicator (a
// fleet peer's read-through fetch; see SetReplicator); remote hits are
// filled locally. Unreadable or corrupted entries are misses; the only
// errors are from unmarshalling a *valid* entry into an incompatible out.
func (c *Cache) Get(key string, out any) (bool, error) {
	raw, ok := c.GetRaw(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("tunecache: decode cached value: %w", err)
	}
	return true, nil
}

// GetRaw is Get without the decode: the raw cached JSON value, for the
// fleet cache-replication endpoints that relay values verbatim.
func (c *Cache) GetRaw(key string) (json.RawMessage, bool) {
	if raw, ok := c.memGet(key); ok {
		return raw, true
	}
	if raw, ok := c.diskGet(key); ok {
		c.memPut(key, raw)
		return raw, true
	}
	c.mu.Lock()
	repl := c.repl
	c.mu.Unlock()
	if repl != nil {
		if raw, ok := repl.Fetch(key); ok {
			// Fill locally (disk + memory) so the next miss of this key
			// does not leave the host again. The local fill is best-effort:
			// a full disk must not turn a remote hit into a miss.
			if err := c.putRaw(key, raw, false); err != nil {
				c.memPut(key, raw)
			}
			return raw, true
		}
	}
	return nil, false
}

// diskGet reads one entry file, treating any corruption as a miss.
func (c *Cache) diskGet(key string) (json.RawMessage, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		return nil, false
	}
	return e.Value, true
}

// Put stores value under key, replacing any previous entry. The write is
// atomic (temp file + rename), so a concurrent Get sees either the old
// entry or the new one, never a torn file. With a replicator configured,
// the entry is also pushed upstream (best-effort: a dead coordinator
// never fails a finished measurement).
func (c *Cache) Put(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("tunecache: encode value: %w", err)
	}
	return c.putRaw(key, raw, true)
}

// PutRaw stores a pre-encoded JSON value (the replication endpoints
// relay raw values between hosts) without pushing it back upstream.
func (c *Cache) PutRaw(key string, raw json.RawMessage) error {
	return c.putRaw(key, raw, false)
}

func (c *Cache) putRaw(key string, raw json.RawMessage, replicate bool) error {
	data, err := json.MarshalIndent(entry{Key: key, SavedAt: time.Now().UTC(), Value: raw}, "", "  ")
	if err != nil {
		return fmt.Errorf("tunecache: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("tunecache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunecache: write entry: %w", fmt.Errorf("%v / %v", werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunecache: %w", err)
	}
	c.memPut(key, raw)
	if replicate {
		c.mu.Lock()
		repl := c.repl
		c.mu.Unlock()
		if repl != nil {
			repl.Store(key, raw)
		}
	}
	return nil
}

// Len reports the number of entry files on disk (not the in-memory
// layer), for tests and the health endpoint.
func (c *Cache) Len() int {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}
