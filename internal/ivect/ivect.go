// Package ivect provides the 3-D integer vector used to index structured
// grids. It mirrors the IntVect abstraction found in block-structured PDE
// frameworks such as Chombo: a point in the integer lattice Z^3 that names a
// cell, a face, or a node of a structured grid.
//
// The space dimension is fixed at three, matching the paper's exemplar,
// which is compiled for SpaceDim = 3.
package ivect

import "fmt"

// SpaceDim is the number of spatial dimensions. The exemplar in the paper is
// compiled for three dimensions; all index arithmetic in this module assumes
// it.
const SpaceDim = 3

// IntVect is a point in the 3-D integer lattice. The zero value is the
// origin.
type IntVect [SpaceDim]int

// New returns the IntVect (x, y, z).
func New(x, y, z int) IntVect { return IntVect{x, y, z} }

// Unit returns the unit vector e_d in direction d (0 = x, 1 = y, 2 = z).
// It panics if d is out of range, since a bad direction is always a
// programming error in stencil code.
func Unit(d int) IntVect {
	var v IntVect
	v[mustDir(d)] = 1
	return v
}

// Uniform returns (s, s, s).
func Uniform(s int) IntVect { return IntVect{s, s, s} }

// Zero is the origin.
var Zero = IntVect{}

// Ones is (1, 1, 1).
var Ones = IntVect{1, 1, 1}

func mustDir(d int) int {
	if d < 0 || d >= SpaceDim {
		panic(fmt.Sprintf("ivect: direction %d out of range [0,%d)", d, SpaceDim))
	}
	return d
}

// Add returns v + w componentwise.
func (v IntVect) Add(w IntVect) IntVect {
	return IntVect{v[0] + w[0], v[1] + w[1], v[2] + w[2]}
}

// Sub returns v - w componentwise.
func (v IntVect) Sub(w IntVect) IntVect {
	return IntVect{v[0] - w[0], v[1] - w[1], v[2] - w[2]}
}

// Neg returns -v.
func (v IntVect) Neg() IntVect { return IntVect{-v[0], -v[1], -v[2]} }

// Scale returns s*v componentwise.
func (v IntVect) Scale(s int) IntVect {
	return IntVect{s * v[0], s * v[1], s * v[2]}
}

// Mul returns the componentwise (Hadamard) product v*w.
func (v IntVect) Mul(w IntVect) IntVect {
	return IntVect{v[0] * w[0], v[1] * w[1], v[2] * w[2]}
}

// Shift returns v displaced by s cells in direction d.
func (v IntVect) Shift(d, s int) IntVect {
	v[mustDir(d)] += s
	return v
}

// With returns v with component d replaced by x.
func (v IntVect) With(d, x int) IntVect {
	v[mustDir(d)] = x
	return v
}

// Min returns the componentwise minimum of v and w.
func (v IntVect) Min(w IntVect) IntVect {
	return IntVect{min(v[0], w[0]), min(v[1], w[1]), min(v[2], w[2])}
}

// Max returns the componentwise maximum of v and w.
func (v IntVect) Max(w IntVect) IntVect {
	return IntVect{max(v[0], w[0]), max(v[1], w[1]), max(v[2], w[2])}
}

// AllLE reports whether every component of v is <= the matching component of
// w. This is the partial order used for box containment.
func (v IntVect) AllLE(w IntVect) bool {
	return v[0] <= w[0] && v[1] <= w[1] && v[2] <= w[2]
}

// AllLT reports whether every component of v is < the matching component of
// w.
func (v IntVect) AllLT(w IntVect) bool {
	return v[0] < w[0] && v[1] < w[1] && v[2] < w[2]
}

// AllGE reports whether every component of v is >= the matching component of
// w.
func (v IntVect) AllGE(w IntVect) bool { return w.AllLE(v) }

// LexLess reports whether v precedes w in lexicographic order with z the
// most significant component and x the least. This matches column-major
// (x unit-stride) storage order: LexLess agrees with flat-offset order
// inside any box.
func (v IntVect) LexLess(w IntVect) bool {
	if v[2] != w[2] {
		return v[2] < w[2]
	}
	if v[1] != w[1] {
		return v[1] < w[1]
	}
	return v[0] < w[0]
}

// Sum returns v[0] + v[1] + v[2]. The sum of a tile coordinate is its
// wavefront (anti-diagonal) number in the tiled-wavefront schedules.
func (v IntVect) Sum() int { return v[0] + v[1] + v[2] }

// Prod returns v[0] * v[1] * v[2]. The product of a box's size vector is its
// volume in cells.
func (v IntVect) Prod() int { return v[0] * v[1] * v[2] }

// MaxComp returns the largest component.
func (v IntVect) MaxComp() int { return max(v[0], max(v[1], v[2])) }

// MinComp returns the smallest component.
func (v IntVect) MinComp() int { return min(v[0], min(v[1], v[2])) }

// CoarsenBy returns v divided by the positive refinement ratio r with
// flooring division (rounding toward negative infinity), the coarsening rule
// used by AMR frameworks so that cell -1 coarsens to cell -1, not 0.
func (v IntVect) CoarsenBy(r int) IntVect {
	if r <= 0 {
		panic(fmt.Sprintf("ivect: coarsening ratio %d must be positive", r))
	}
	return IntVect{floorDiv(v[0], r), floorDiv(v[1], r), floorDiv(v[2], r)}
}

// RefineBy returns v multiplied by the positive refinement ratio r.
func (v IntVect) RefineBy(r int) IntVect {
	if r <= 0 {
		panic(fmt.Sprintf("ivect: refinement ratio %d must be positive", r))
	}
	return v.Scale(r)
}

// Mod returns v modulo w componentwise with a result in [0, w) for positive
// w, i.e. Euclidean remainder. Used for periodic index wrapping.
func (v IntVect) Mod(w IntVect) IntVect {
	return IntVect{eucMod(v[0], w[0]), eucMod(v[1], w[1]), eucMod(v[2], w[2])}
}

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func eucMod(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("ivect: modulus %d must be positive", b))
	}
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// String formats v as "(x,y,z)".
func (v IntVect) String() string {
	return fmt.Sprintf("(%d,%d,%d)", v[0], v[1], v[2])
}
