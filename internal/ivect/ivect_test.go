package ivect

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	v := New(1, -2, 3)
	if v[0] != 1 || v[1] != -2 || v[2] != 3 {
		t.Fatalf("New(1,-2,3) = %v", v)
	}
}

func TestUnit(t *testing.T) {
	for d := 0; d < SpaceDim; d++ {
		u := Unit(d)
		for i := 0; i < SpaceDim; i++ {
			want := 0
			if i == d {
				want = 1
			}
			if u[i] != want {
				t.Errorf("Unit(%d)[%d] = %d, want %d", d, i, u[i], want)
			}
		}
	}
}

func TestUnitPanicsOnBadDir(t *testing.T) {
	for _, d := range []int{-1, 3, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Unit(%d) did not panic", d)
				}
			}()
			Unit(d)
		}()
	}
}

func TestArithmetic(t *testing.T) {
	a, b := New(1, 2, 3), New(10, 20, 30)
	if got := a.Add(b); got != New(11, 22, 33) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != New(9, 18, 27) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Scale(4); got != New(4, 8, 12) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != New(10, 40, 90) {
		t.Errorf("Mul = %v", got)
	}
}

func TestShiftWith(t *testing.T) {
	v := New(5, 5, 5)
	if got := v.Shift(1, -3); got != New(5, 2, 5) {
		t.Errorf("Shift = %v", got)
	}
	// Shift must not mutate the receiver.
	if v != New(5, 5, 5) {
		t.Errorf("Shift mutated receiver: %v", v)
	}
	if got := v.With(2, 9); got != New(5, 5, 9) {
		t.Errorf("With = %v", got)
	}
}

func TestMinMaxComparisons(t *testing.T) {
	a, b := New(1, 9, 5), New(3, 2, 5)
	if got := a.Min(b); got != New(1, 2, 5) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(3, 9, 5) {
		t.Errorf("Max = %v", got)
	}
	if !New(1, 2, 3).AllLE(New(1, 2, 3)) {
		t.Error("AllLE should hold for equal vectors")
	}
	if New(1, 2, 3).AllLT(New(2, 3, 3)) {
		t.Error("AllLT should fail when any component is equal")
	}
	if !New(0, 0, 0).AllLT(New(1, 1, 1)) {
		t.Error("AllLT failed for strictly smaller vector")
	}
	if !New(2, 3, 4).AllGE(New(1, 2, 3)) {
		t.Error("AllGE failed")
	}
}

func TestLexLessMatchesColumnMajorOffset(t *testing.T) {
	// For points in a box, LexLess must agree with the column-major flat
	// offset order (x fastest).
	n := 4
	offset := func(v IntVect) int { return v[0] + n*(v[1]+n*v[2]) }
	var pts []IntVect
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, New(x, y, z))
			}
		}
	}
	for i, a := range pts {
		for j, b := range pts {
			if got, want := a.LexLess(b), offset(a) < offset(b); got != want {
				t.Fatalf("LexLess(%v,%v) = %v, want %v (indices %d,%d)", a, b, got, want, i, j)
			}
		}
	}
}

func TestSumProdComp(t *testing.T) {
	v := New(2, 3, 4)
	if v.Sum() != 9 {
		t.Errorf("Sum = %d", v.Sum())
	}
	if v.Prod() != 24 {
		t.Errorf("Prod = %d", v.Prod())
	}
	if v.MaxComp() != 4 || v.MinComp() != 2 {
		t.Errorf("MaxComp/MinComp = %d/%d", v.MaxComp(), v.MinComp())
	}
}

func TestCoarsenFloors(t *testing.T) {
	// AMR coarsening rounds toward -inf: cell -1 at ratio 2 lives under
	// coarse cell -1.
	cases := []struct {
		in   IntVect
		r    int
		want IntVect
	}{
		{New(-1, 0, 1), 2, New(-1, 0, 0)},
		{New(-4, -3, 7), 4, New(-1, -1, 1)},
		{New(5, 6, 7), 1, New(5, 6, 7)},
	}
	for _, c := range cases {
		if got := c.in.CoarsenBy(c.r); got != c.want {
			t.Errorf("%v.CoarsenBy(%d) = %v, want %v", c.in, c.r, got, c.want)
		}
	}
}

func TestRefineCoarsenRoundTrip(t *testing.T) {
	f := func(x, y, z int8, r uint8) bool {
		ratio := int(r%7) + 1
		v := New(int(x), int(y), int(z))
		return v.RefineBy(ratio).CoarsenBy(ratio) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModIsPeriodic(t *testing.T) {
	w := New(8, 8, 8)
	f := func(x, y, z int16) bool {
		v := New(int(x), int(y), int(z))
		m := v.Mod(w)
		// In range, and congruent mod w.
		inRange := m.AllGE(Zero) && m.AllLT(w)
		congruent := (v[0]-m[0])%8 == 0 && (v[1]-m[1])%8 == 0 && (v[2]-m[2])%8 == 0
		// Periodicity: shifting by a period does not change the image.
		periodic := v.Add(w.Scale(3)).Mod(w) == m
		return inRange && congruent && periodic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	rv := func() IntVect {
		return New(rnd.Intn(200)-100, rnd.Intn(200)-100, rnd.Intn(200)-100)
	}
	for i := 0; i < 200; i++ {
		a, b := rv(), rv()
		if a.Add(b) != b.Add(a) {
			t.Fatalf("Add not commutative for %v, %v", a, b)
		}
		if a.Add(b).Sub(b) != a {
			t.Fatalf("Add/Sub not inverse for %v, %v", a, b)
		}
		if a.Add(a.Neg()) != Zero {
			t.Fatalf("Neg not additive inverse for %v", a)
		}
	}
}

func TestString(t *testing.T) {
	if got := New(1, -2, 3).String(); got != "(1,-2,3)" {
		t.Errorf("String = %q", got)
	}
}
