package stats

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestTimeBasics(t *testing.T) {
	calls := 0
	s := Time(5, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 5 || s.Reps != 5 {
		t.Fatalf("calls=%d reps=%d", calls, s.Reps)
	}
	if s.MinSec <= 0 || s.MinSec > s.Mean || s.Mean > s.MaxSec {
		t.Fatalf("ordering broken: min=%v mean=%v max=%v", s.MinSec, s.Mean, s.MaxSec)
	}
	if s.MinSec < 0.0005 {
		t.Fatalf("min below sleep duration: %v", s.MinSec)
	}
}

func TestTimeSingleRepNoStdDev(t *testing.T) {
	s := Time(1, func() {})
	if s.StdDev != 0 {
		t.Fatalf("stddev of one rep = %v", s.StdDev)
	}
}

func TestTimePanicsOnBadReps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reps=0 did not panic")
		}
	}()
	Time(0, func() {})
}

func TestSpeedup(t *testing.T) {
	sp := Speedup([]float64{8, 4, 2, 1})
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-15 {
			t.Fatalf("speedup = %v", sp)
		}
	}
	if got := Speedup(nil); len(got) != 0 {
		t.Fatal("empty input mishandled")
	}
	// Zero times are left as zero speedup, not Inf.
	if got := Speedup([]float64{1, 0}); got[1] != 0 {
		t.Fatalf("zero time speedup = %v", got[1])
	}
}

func TestEfficiency(t *testing.T) {
	eff := Efficiency([]float64{8, 4, 1}, []int{1, 2, 8})
	want := []float64{1, 1, 1}
	for i := range want {
		if math.Abs(eff[i]-want[i]) > 1e-15 {
			t.Fatalf("efficiency = %v", eff)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Efficiency([]float64{1}, []int{1, 2})
}

func TestStdDevKnownValues(t *testing.T) {
	// Feed deterministic "durations" by sleeping different amounts is too
	// flaky; instead check the aggregation math indirectly: many identical
	// fast calls must produce stddev << mean... just assert non-negative
	// and finite.
	s := Time(10, func() {})
	if s.StdDev < 0 || math.IsNaN(s.StdDev) || math.IsInf(s.StdDev, 0) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestTimePrepRunsBeforeEveryRepUntimed(t *testing.T) {
	var preps, runs int
	s, err := TimePrepContext(context.Background(), 4, func() {
		if preps != runs {
			t.Fatalf("prep %d ran with %d reps done; must run exactly once before each rep", preps, runs)
		}
		preps++
		time.Sleep(20 * time.Millisecond) // must not show up in the timings
	}, func() {
		runs++
	})
	if err != nil {
		t.Fatal(err)
	}
	if preps != 4 || runs != 4 {
		t.Fatalf("prep ran %d times, f %d times, want 4/4", preps, runs)
	}
	if s.Reps != 4 {
		t.Fatalf("Reps = %d", s.Reps)
	}
	if s.MinSec >= 0.020 {
		t.Fatalf("min %v sec includes the untimed prep", s.MinSec)
	}
}

func TestTimePrepNilPrep(t *testing.T) {
	n := 0
	s, err := TimePrepContext(context.Background(), 3, nil, func() { n++ })
	if err != nil || n != 3 || s.Reps != 3 {
		t.Fatalf("err %v, n %d, reps %d", err, n, s.Reps)
	}
}

func TestTimePrepContextCancelSkipsPrep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	preps := 0
	_, err := TimePrepContext(ctx, 5, func() { preps++ }, func() {
		if preps == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if preps != 2 {
		t.Fatalf("prep ran %d times after cancel at 2", preps)
	}
}

// TestTimePrepRunsBeforeEveryRepetition pins the prep contract for
// multi-repetition measurements: prep interleaves strictly before each
// repetition (p f p f p f), never just once up front. Measured workloads
// that accumulate into their output (every schedule runner does) depend
// on this for correctness, not just clean timings.
func TestTimePrepRunsBeforeEveryRepetition(t *testing.T) {
	var order []byte
	s, err := TimePrepContext(context.Background(), 3,
		func() { order = append(order, 'p') },
		func() { order = append(order, 'f') })
	if err != nil || s.Reps != 3 {
		t.Fatalf("reps=%d err=%v", s.Reps, err)
	}
	if got := string(order); got != "pfpfpf" {
		t.Fatalf("call order %q, want \"pfpfpf\"", got)
	}
}
