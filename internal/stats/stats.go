// Package stats provides the small measurement utilities the benchmark
// harness uses: repeated timing with min/mean/stddev, and speedup /
// parallel-efficiency series.
package stats

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Sample summarizes repeated timings.
type Sample struct {
	Reps   int
	MinSec float64
	MaxSec float64
	Mean   float64
	StdDev float64
}

// Time runs f reps times and summarizes the wall-clock timings. Reported
// results use the minimum (the standard practice for noisy shared
// machines); the spread is kept for error reporting. It panics for
// non-positive reps.
func Time(reps int, f func()) Sample {
	s, _ := TimeContext(context.Background(), reps, f)
	return s
}

// TimeContext is Time with cancellation: ctx is checked before every
// repetition, so a cancel or deadline aborts the series within one
// repetition. On interruption it returns ctx.Err() together with a Sample
// summarizing only the repetitions that completed (Reps carries that
// count; zero completed repetitions leave the extrema infinite, so check
// the error before using the Sample).
func TimeContext(ctx context.Context, reps int, f func()) (Sample, error) {
	return TimePrepContext(ctx, reps, nil, f)
}

// TimePrepContext is TimeContext with an untimed per-repetition setup hook:
// prep (if non-nil) runs before every repetition, outside the measured
// window. It exists for measurements whose workload mutates its own input —
// resetting the state back to the starting conditions is part of running
// the experiment, not part of the experiment, so its cost must not pollute
// the sample.
func TimePrepContext(ctx context.Context, reps int, prep, f func()) (Sample, error) {
	if reps <= 0 {
		panic(fmt.Sprintf("stats: reps %d must be positive", reps))
	}
	s := Sample{MinSec: math.Inf(1), MaxSec: math.Inf(-1)}
	var sum, sumSq float64
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			s.summarize(sum, sumSq)
			return s, err
		}
		if prep != nil {
			prep()
		}
		start := time.Now()
		f()
		d := time.Since(start).Seconds()
		if d < s.MinSec {
			s.MinSec = d
		}
		if d > s.MaxSec {
			s.MaxSec = d
		}
		sum += d
		sumSq += d * d
		s.Reps++
	}
	s.summarize(sum, sumSq)
	return s, nil
}

// summarize fills Mean and StdDev from the running sums over s.Reps
// completed repetitions.
func (s *Sample) summarize(sum, sumSq float64) {
	if s.Reps == 0 {
		return
	}
	n := float64(s.Reps)
	s.Mean = sum / n
	if s.Reps > 1 {
		v := (sumSq - sum*sum/n) / (n - 1)
		if v > 0 {
			s.StdDev = math.Sqrt(v)
		}
	}
}

// Speedup converts a time series (indexed like threads) into speedups
// relative to the first entry.
func Speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 {
		return out
	}
	base := times[0]
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency converts times and their thread counts into parallel
// efficiencies (speedup / threads).
func Efficiency(times []float64, threads []int) []float64 {
	if len(times) != len(threads) {
		panic(fmt.Sprintf("stats: %d times vs %d thread counts", len(times), len(threads)))
	}
	sp := Speedup(times)
	out := make([]float64, len(sp))
	for i := range sp {
		if threads[i] > 0 {
			out[i] = sp[i] / float64(threads[i])
		}
	}
	return out
}
