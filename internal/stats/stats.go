// Package stats provides the small measurement utilities the benchmark
// harness uses: repeated timing with min/mean/stddev, and speedup /
// parallel-efficiency series.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Sample summarizes repeated timings.
type Sample struct {
	Reps   int
	MinSec float64
	MaxSec float64
	Mean   float64
	StdDev float64
}

// Time runs f reps times and summarizes the wall-clock timings. Reported
// results use the minimum (the standard practice for noisy shared
// machines); the spread is kept for error reporting. It panics for
// non-positive reps.
func Time(reps int, f func()) Sample {
	if reps <= 0 {
		panic(fmt.Sprintf("stats: reps %d must be positive", reps))
	}
	s := Sample{Reps: reps, MinSec: math.Inf(1), MaxSec: math.Inf(-1)}
	var sum, sumSq float64
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		d := time.Since(start).Seconds()
		if d < s.MinSec {
			s.MinSec = d
		}
		if d > s.MaxSec {
			s.MaxSec = d
		}
		sum += d
		sumSq += d * d
	}
	s.Mean = sum / float64(reps)
	if reps > 1 {
		v := (sumSq - sum*sum/float64(reps)) / float64(reps-1)
		if v > 0 {
			s.StdDev = math.Sqrt(v)
		}
	}
	return s
}

// Speedup converts a time series (indexed like threads) into speedups
// relative to the first entry.
func Speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 {
		return out
	}
	base := times[0]
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency converts times and their thread counts into parallel
// efficiencies (speedup / threads).
func Efficiency(times []float64, threads []int) []float64 {
	if len(times) != len(threads) {
		panic(fmt.Sprintf("stats: %d times vs %d thread counts", len(times), len(threads)))
	}
	sp := Speedup(times)
	out := make([]float64, len(sp))
	for i := range sp {
		if threads[i] > 0 {
			out[i] = sp[i] / float64(threads[i])
		}
	}
	return out
}
