package stencilsched

import (
	"testing"

	"stencilsched/internal/box"
	"stencilsched/internal/kernel"
	"stencilsched/internal/layout"
)

// newExchangeBench builds a periodic 32^3 domain decomposed at box size n
// and returns a closure performing one full ghost exchange.
func newExchangeBench(b *testing.B, n int) func() {
	b.Helper()
	l, err := layout.Decompose(box.Cube(32), n, [3]bool{true, true, true})
	if err != nil {
		b.Fatal(err)
	}
	ld := layout.NewLevelData(l, kernel.NComp, kernel.NGhost)
	for _, f := range ld.Fabs {
		f.Fill(1)
	}
	b.SetBytes(ld.Copier().ExchangeBytes(kernel.NComp))
	return func() { ld.Exchange(2) }
}
