package stencilsched

import (
	"context"
	"errors"
	"testing"
)

func TestProblemValidateThreads(t *testing.T) {
	for _, threads := range []int{0, -3} {
		p := Problem{BoxN: 8, NumBoxes: 1, Threads: threads}
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted Threads=%d", threads)
		}
		v, err := VariantByName("Baseline-CLO: P>=Box")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunMeasured(v, p, 1); err == nil {
			t.Errorf("RunMeasured accepted Threads=%d", threads)
		}
		if _, err := Autotune(p, 1, nil); err == nil {
			t.Errorf("Autotune accepted Threads=%d", threads)
		}
	}
	if err := (Problem{BoxN: 8, NumBoxes: 1, Threads: 1}).Validate(); err != nil {
		t.Errorf("Validate rejected a good problem: %v", err)
	}
}

func TestRunMeasuredContextCanceled(t *testing.T) {
	v, err := VariantByName("Baseline-CLO: P>=Box")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunMeasuredContext(ctx, v, Problem{BoxN: 8, NumBoxes: 1, Threads: 1}, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAutotuneContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AutotuneContext(ctx, Problem{BoxN: 8, NumBoxes: 1, Threads: 1}, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunMeasuredContextBackground(t *testing.T) {
	v, err := VariantByName("Shift-Fuse-CLO: P>=Box")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMeasuredContext(context.Background(), v, Problem{BoxN: 8, NumBoxes: 2, Threads: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Reps != 2 || res.Seconds <= 0 {
		t.Fatalf("bad timing %+v", res.Timing)
	}
}
